"""The analyzer's rules: C001-C010.

Every rule is a generator taking an :class:`AnalysisContext` and yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.  Rules are pure
inspections — none enumerates trajectories or touches probabilities; the
most expensive machinery is the cached BFS closure of
:class:`~repro.analysis.reachability.ReachabilityIndex`, the boolean
forward pass of :mod:`repro.analysis.precheck` (C005) and the abstract
forward pass of :mod:`repro.analysis.envelope` (C007-C010) — all
readings-specific and polynomial.

| code | severity | finding |
|------|----------|---------|
| C001 | ERROR    | ``unreachable(l, l)`` + ``latency(l, d)``: contradictory stay |
| C002 | WARNING  | TT constraint whose destination is unreachable from its source |
| C003 | INFO     | duplicate statements / bounds dominated by stricter ones |
| C004 | WARNING  | location with no DU-legal in- or out-steps |
| C005 | ERROR    | a concrete reading sequence has zero valid mass |
| C006 | INFO     | ct-graph node-count upper bound per timestep (+ byte estimates) |
| C007 | INFO     | abstract width envelope: tighter per-level node bound |
| C008 | WARNING  | dead support candidates / forced single-location levels |
| C009 | ERROR    | interval envelope empties a level: zero mass, proved early |
| C010 | INFO     | engine/materialisation routing advice (``--advise``) |
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.envelope import (
    ConstraintEnvelope,
    estimate_ctg_bytes,
    estimate_graph_bytes,
)
from repro.analysis.precheck import first_dead_timestep
from repro.analysis.reachability import ReachabilityIndex
from repro.core.constraints import ConstraintSet, Latency, TravelingTime
from repro.core.lsequence import LSequence

__all__ = [
    "AnalysisContext",
    "check_contradictory_stays",
    "check_dead_traveling_times",
    "check_redundant_constraints",
    "check_dead_locations",
    "check_zero_mass",
    "check_blowup_estimate",
    "check_width_envelope",
    "check_dead_level_candidates",
    "check_envelope_zero_mass",
    "check_routing_advice",
    "ctgraph_size_bounds",
]


@dataclass(frozen=True)
class AnalysisContext:
    """Everything one analyzer run knows about its inputs.

    ``map_model`` and ``prior`` are duck-typed (anything exposing
    ``location_names``); ``lsequence`` is present only when the caller
    supplied a concrete reading sequence to pre-check.
    """

    constraints: ConstraintSet
    universe: Tuple[str, ...]
    reachability: ReachabilityIndex
    map_model: Optional[object] = None
    prior: Optional[object] = None
    lsequence: Optional[LSequence] = None
    strict_truncation: bool = False
    #: The abstract-interpretation envelope over the readings, built once
    #: by :func:`~repro.analysis.analyzer.analyze` and shared by
    #: C007-C010.  ``None`` without readings.
    envelope: Optional[ConstraintEnvelope] = None


# ----------------------------------------------------------------------
# C001 — contradiction: unreachable(l, l) + latency(l, d >= 2)
# ----------------------------------------------------------------------
def check_contradictory_stays(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """``unreachable(l, l)`` forbids consecutive timesteps at ``l``, so no
    stay can ever span the >= 2 timesteps a latency bound demands."""
    for location, bound in sorted(ctx.constraints.latency_bounds.items()):
        if ctx.constraints.forbids_step(location, location):
            yield Diagnostic(
                "C001", Severity.ERROR,
                f"unreachable({location}, {location}) contradicts "
                f"latency({location}, {bound}): the DU constraint caps "
                f"every stay at {location} at a single timestep, so the "
                f"{bound}-step latency bound is unsatisfiable: no "
                f"trajectory may visit {location} (under the lenient "
                f"truncated-stay policy, only a truncated arrival at the "
                f"final timestep survives)",
                subjects=(location,),
                data={"latency": bound})


# ----------------------------------------------------------------------
# C002 — dead TT: destination unreachable from source
# ----------------------------------------------------------------------
def check_dead_traveling_times(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """A ``travelingTime(l1, l2, v)`` only ever binds on a trajectory that
    visits ``l1`` and later ``l2`` — impossible when ``l2`` is unreachable
    from ``l1`` in the DU-induced step graph."""
    for (source, destination), steps in sorted(
            ctx.constraints.traveling_time_bounds.items()):
        if not ctx.reachability.can_ever_reach(source, destination):
            yield Diagnostic(
                "C002", Severity.WARNING,
                f"travelingTime({source}, {destination}, {steps}) can "
                f"never bind: {destination} is unreachable from {source} "
                f"in the DU-induced step graph (over "
                f"{len(ctx.reachability.universe)} locations), so the "
                f"constraint is dead",
                subjects=(source, destination),
                data={"steps": steps})


# ----------------------------------------------------------------------
# C003 — redundant constraints
# ----------------------------------------------------------------------
def check_redundant_constraints(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Duplicate statements and bounds dominated by stricter stated bounds.

    ``ConstraintSet`` already keeps the strictest bound per subject, so
    neither kind changes the semantics — the diagnostics exist so stated
    constraint sets stay canonical.
    """
    counts = Counter(ctx.constraints)
    for constraint, copies in sorted(counts.items(),
                                     key=lambda pair: str(pair[0])):
        if copies > 1:
            yield Diagnostic(
                "C003", Severity.INFO,
                f"{constraint} is stated {copies} times; the duplicates "
                f"change nothing",
                subjects=(str(constraint),))
    tt_bounds = ctx.constraints.traveling_time_bounds
    lt_bounds = ctx.constraints.latency_bounds
    for constraint in sorted(counts, key=str):
        if isinstance(constraint, TravelingTime):
            binding = tt_bounds[(constraint.loc_a, constraint.loc_b)]
            if constraint.steps < binding:
                yield Diagnostic(
                    "C003", Severity.INFO,
                    f"{constraint} is dominated by the stricter stated "
                    f"bound travelingTime({constraint.loc_a}, "
                    f"{constraint.loc_b}, {binding})",
                    subjects=(str(constraint),))
        elif isinstance(constraint, Latency):
            binding = lt_bounds[constraint.location]
            if constraint.duration < binding:
                yield Diagnostic(
                    "C003", Severity.INFO,
                    f"{constraint} is dominated by the stricter stated "
                    f"bound latency({constraint.location}, {binding})",
                    subjects=(str(constraint),))


# ----------------------------------------------------------------------
# C004 — dead locations
# ----------------------------------------------------------------------
def _mass_carrying_locations(ctx: AnalysisContext) -> Optional[Set[str]]:
    """The locations some prior/reading can put mass on (``None`` = unknown)."""
    if ctx.lsequence is not None:
        carrying: Set[str] = set()
        for tau in range(ctx.lsequence.duration):
            carrying.update(ctx.lsequence.support(tau))
        return carrying
    prior_names = getattr(ctx.prior, "location_names", None)
    if prior_names is not None:
        return set(prior_names)
    return None


def check_dead_locations(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """A location with no DU-legal out-steps can only end a trajectory; one
    with no DU-legal in-steps can only start it.  Either way, prior mass
    placed on it at any interior timestep is guaranteed loss."""
    carrying = _mass_carrying_locations(ctx)
    for location in ctx.universe:
        has_out = bool(ctx.reachability.successors(location))
        has_in = bool(ctx.reachability.predecessors(location))
        if has_out and has_in:
            continue
        if not has_out and not has_in:
            detail = ("no DU-legal incoming or outgoing steps (not even a "
                      "stay): it cannot appear in any trajectory of 2+ "
                      "timesteps")
        elif not has_out:
            detail = ("no DU-legal outgoing steps (not even a stay): it "
                      "can only appear at the final timestep")
        else:
            detail = ("no DU-legal incoming steps (not even a stay): it "
                      "can only appear at timestep 0")
        carries_mass = carrying is None or location in carrying
        yield Diagnostic(
            "C004",
            Severity.WARNING if carries_mass else Severity.INFO,
            f"dead location {location}: {detail}"
            + ("" if carries_mass
               else " (no supplied reading/prior puts mass on it)"),
            subjects=(location,))


# ----------------------------------------------------------------------
# C005 — zero-mass pre-check for a concrete reading sequence
# ----------------------------------------------------------------------
def check_zero_mass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """The boolean forward pass of :mod:`repro.analysis.precheck`."""
    if ctx.lsequence is None:
        return
    failed_at = first_dead_timestep(
        ctx.lsequence, ctx.constraints,
        strict_truncation=ctx.strict_truncation)
    if failed_at is None:
        return
    if failed_at == 0:
        where = "no source location satisfies the constraints at timestep 0"
    else:
        where = (f"every interpretation of the readings dies entering "
                 f"timestep {failed_at}")
    yield Diagnostic(
        "C005", Severity.ERROR,
        f"zero valid mass: {where}; conditioning is undefined and "
        f"Algorithm 1 would raise ZeroMassError "
        f"(repro.core.diagnostics.diagnose gives a per-move account)",
        data={"failed_at": failed_at})


# ----------------------------------------------------------------------
# C006 — ct-graph blowup estimate
# ----------------------------------------------------------------------
def ctgraph_size_bounds(lsequence: LSequence,
                        constraints: ConstraintSet) -> List[int]:
    """A per-timestep upper bound on the number of ct-graph node states.

    A node state is ``(location, stay, departures)``.  Per candidate
    location ``l`` at timestep ``tau`` the bound multiplies:

    * the stay values — ``latency(l, d)`` admits ``{1..d-1}`` plus the
      non-binding ``None``, i.e. ``d`` values (1 without a bound);
    * per TT-source ``l' != l``: absence, or one entry ``(t, l')`` for
      each ``t`` in the ``maxTravelingTime(l')`` window where ``l'`` has
      prior support.

    The bound never underestimates (it ignores DU/TT pruning and the
    l-sequence-aware departure filter, which only shrink the state space);
    computing it costs ``O(T * L * |TT sources| * log T)``.
    """
    tt_sources = sorted(constraints.tt_sources)
    support_times: Dict[str, List[int]] = {source: [] for source in tt_sources}
    for tau in range(lsequence.duration):
        for location in lsequence.support(tau):
            if location in support_times:
                support_times[location].append(tau)

    bounds: List[int] = []
    for tau in range(lsequence.duration):
        total = 0
        for location in lsequence.support(tau):
            latency = constraints.latency_of(location)
            combinations = latency if latency is not None and latency > 1 else 1
            for source in tt_sources:
                if source == location:
                    continue
                window_start = tau - constraints.max_traveling_time(source) + 1
                times = support_times[source]
                low = bisect_left(times, max(0, window_start))
                high = bisect_left(times, tau)
                combinations *= 1 + (high - low)
            total += combinations
        bounds.append(total)
    return bounds


def check_blowup_estimate(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Report the C006 size bound so callers can budget memory up front.

    Bytes are reported for *both* materialisations — ``CTNode`` objects
    and the flat columnar form — since the flat form carries the same
    graph in roughly a quarter of the memory; quoting only the node form
    (as this rule originally did) overstates the real floor ~4x.
    """
    if ctx.lsequence is None:
        return
    bounds = ctgraph_size_bounds(ctx.lsequence, ctx.constraints)
    worst = max(bounds)
    worst_at = bounds.index(worst)
    # Each node has at most one successor per next-level support location.
    edge_bounds = [bounds[tau] * len(ctx.lsequence.support(tau + 1))
                   for tau in range(len(bounds) - 1)]
    node_bytes, flat_bytes = estimate_graph_bytes(bounds, edge_bounds)
    ctg_bytes = estimate_ctg_bytes(bounds, edge_bounds)
    yield Diagnostic(
        "C006", Severity.INFO,
        f"ct-graph size upper bound: <= {sum(bounds)} node states over "
        f"{len(bounds)} timesteps (worst timestep {worst_at}: <= {worst}); "
        f"~{node_bytes / 1024.0:.0f} KiB as CTNode objects, "
        f"~{flat_bytes / 1024.0:.0f} KiB flat (materialize='flat'), "
        f"~{ctg_bytes / 1024.0:.0f} KiB on disk as .ctg "
        f"(materialize='store')",
        data={"total": sum(bounds), "worst": worst,
              "worst_timestep": worst_at, "per_timestep": bounds,
              "per_timestep_edges": edge_bounds,
              "node_bytes": node_bytes, "flat_bytes": flat_bytes,
              "ctg_bytes": ctg_bytes})


# ----------------------------------------------------------------------
# C007 — abstract width envelope (tighter than C006)
# ----------------------------------------------------------------------
def check_width_envelope(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Report the per-level width bound of the constraint envelope.

    Pointwise at most C006's support-product bound (the envelope starts
    from the same factors and only intersects them with feasibility
    information), and sound: every concrete forward state of Algorithm 1
    is covered by its envelope cell.
    """
    if ctx.lsequence is None or ctx.envelope is None:
        return
    if ctx.envelope.proves_zero_mass:
        # C009 reports the emptiness; a width bound of zero adds noise.
        return
    widths = ctx.envelope.width_bounds()
    total = sum(widths)
    worst = max(widths)
    worst_at = widths.index(worst)
    c006_total = sum(ctgraph_size_bounds(ctx.lsequence, ctx.constraints))
    tightening = c006_total / max(total, 1)
    yield Diagnostic(
        "C007", Severity.INFO,
        f"abstract width envelope: <= {total} node states over "
        f"{len(widths)} timesteps (worst timestep {worst_at}: <= {worst}); "
        f"tightens the C006 product bound ({c006_total}) by "
        f"{tightening:.2f}x",
        data={"total": total, "worst": worst, "worst_timestep": worst_at,
              "per_timestep": widths, "c006_total": c006_total})


# ----------------------------------------------------------------------
# C008 — dead support candidates and forced levels
# ----------------------------------------------------------------------
def check_dead_level_candidates(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Support entries the envelope proves can never carry mass, and
    ambiguous levels statically forced to a single location."""
    if ctx.lsequence is None or ctx.envelope is None:
        return
    if ctx.envelope.proves_zero_mass:
        # Past the empty level everything is trivially dead; C009 covers it.
        return
    dead = ctx.envelope.dead_candidates()
    if dead:
        shown = ", ".join(f"t{tau}:{location}" for tau, location in dead[:6])
        if len(dead) > 6:
            shown += ", ..."
        yield Diagnostic(
            "C008", Severity.WARNING,
            f"{len(dead)} support candidate(s) can never carry mass "
            f"({shown}): no constraint-legal trajectory passes through "
            f"them, so their prior probability is guaranteed loss that "
            f"conditioning redistributes",
            subjects=tuple(sorted({location for _, location in dead})),
            data={"dead": [[tau, location] for tau, location in dead]})
    forced = ctx.envelope.forced_levels()
    if forced:
        shown = ", ".join(f"t{tau}:{location}"
                          for tau, location in forced[:6])
        if len(forced) > 6:
            shown += ", ..."
        yield Diagnostic(
            "C008", Severity.INFO,
            f"{len(forced)} ambiguous timestep(s) are statically forced "
            f"to a single location ({shown}): cleaning will answer these "
            f"levels with certainty",
            subjects=tuple(sorted({location for _, location in forced})),
            data={"forced": [[tau, location] for tau, location in forced]})


# ----------------------------------------------------------------------
# C009 — envelope emptiness: zero mass proved by intervals alone
# ----------------------------------------------------------------------
def check_envelope_zero_mass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Zero valid mass proved by the interval envelope.

    One-directional: an empty envelope level admits no concrete state, so
    this is a sound (and cheaper, polynomial-width) early proof that
    Algorithm 1 raises ``ZeroMassError``.  C005's exact forward pass
    remains the complete test and fires alongside this rule.
    """
    if ctx.lsequence is None or ctx.envelope is None:
        return
    failed_at = ctx.envelope.first_empty_level
    if failed_at is None:
        return
    yield Diagnostic(
        "C009", Severity.ERROR,
        f"zero valid mass, proved by the interval envelope: the abstract "
        f"TT/latency windows leave no feasible (location, stay, "
        f"departures) state at timestep {failed_at}, so Algorithm 1 must "
        f"raise ZeroMassError (the exact C005 pass confirms it)",
        data={"failed_at": failed_at})


# ----------------------------------------------------------------------
# C010 — engine/materialisation routing advice (advisory, --advise)
# ----------------------------------------------------------------------
def check_routing_advice(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Surface the static routing verdict of
    :func:`repro.analysis.advisor.advise` as a diagnostic."""
    if ctx.lsequence is None or ctx.envelope is None:
        return
    # Imported lazily: the advisor depends on repro.core.algorithm, which
    # plain rule evaluation should not pull in.
    from repro.analysis.advisor import advise

    advice = advise(ctx.lsequence, ctx.constraints,
                    strict_truncation=ctx.strict_truncation,
                    envelope=ctx.envelope)
    yield Diagnostic(
        "C010", Severity.INFO,
        f"routing advice: engine={advice.engine}, "
        f"materialize={advice.materialize} — {advice.reason} "
        f"(~{advice.predicted_node_bytes / 1024.0:.0f} KiB as nodes, "
        f"~{advice.predicted_flat_bytes / 1024.0:.0f} KiB flat, "
        f"~{advice.predicted_ctg_bytes / 1024.0:.0f} KiB as .ctg)",
        data={"engine": advice.engine, "materialize": advice.materialize,
              "predicted_states": advice.predicted_states,
              "peak_level_width": advice.peak_level_width,
              "predicted_node_bytes": advice.predicted_node_bytes,
              "predicted_flat_bytes": advice.predicted_flat_bytes,
              "predicted_ctg_bytes": advice.predicted_ctg_bytes,
              "zero_mass": advice.zero_mass,
              "reason": advice.reason})
