"""The analyzer's rules: C001-C006.

Every rule is a generator taking an :class:`AnalysisContext` and yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.  Rules are pure
inspections — none enumerates trajectories or touches probabilities; the
most expensive machinery is the cached BFS closure of
:class:`~repro.analysis.reachability.ReachabilityIndex` and the boolean
forward pass of :mod:`repro.analysis.precheck` (C005, readings-specific).

| code | severity | finding |
|------|----------|---------|
| C001 | ERROR    | ``unreachable(l, l)`` + ``latency(l, d)``: contradictory stay |
| C002 | WARNING  | TT constraint whose destination is unreachable from its source |
| C003 | INFO     | duplicate statements / bounds dominated by stricter ones |
| C004 | WARNING  | location with no DU-legal in- or out-steps |
| C005 | ERROR    | a concrete reading sequence has zero valid mass |
| C006 | INFO     | ct-graph node-count upper bound per timestep |
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.precheck import first_dead_timestep
from repro.analysis.reachability import ReachabilityIndex
from repro.core.constraints import ConstraintSet, Latency, TravelingTime
from repro.core.lsequence import LSequence

__all__ = [
    "AnalysisContext",
    "check_contradictory_stays",
    "check_dead_traveling_times",
    "check_redundant_constraints",
    "check_dead_locations",
    "check_zero_mass",
    "check_blowup_estimate",
    "ctgraph_size_bounds",
]


@dataclass(frozen=True)
class AnalysisContext:
    """Everything one analyzer run knows about its inputs.

    ``map_model`` and ``prior`` are duck-typed (anything exposing
    ``location_names``); ``lsequence`` is present only when the caller
    supplied a concrete reading sequence to pre-check.
    """

    constraints: ConstraintSet
    universe: Tuple[str, ...]
    reachability: ReachabilityIndex
    map_model: Optional[object] = None
    prior: Optional[object] = None
    lsequence: Optional[LSequence] = None
    strict_truncation: bool = False


# ----------------------------------------------------------------------
# C001 — contradiction: unreachable(l, l) + latency(l, d >= 2)
# ----------------------------------------------------------------------
def check_contradictory_stays(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """``unreachable(l, l)`` forbids consecutive timesteps at ``l``, so no
    stay can ever span the >= 2 timesteps a latency bound demands."""
    for location, bound in sorted(ctx.constraints.latency_bounds.items()):
        if ctx.constraints.forbids_step(location, location):
            yield Diagnostic(
                "C001", Severity.ERROR,
                f"unreachable({location}, {location}) contradicts "
                f"latency({location}, {bound}): the DU constraint caps "
                f"every stay at {location} at a single timestep, so the "
                f"{bound}-step latency bound is unsatisfiable: no "
                f"trajectory may visit {location} (under the lenient "
                f"truncated-stay policy, only a truncated arrival at the "
                f"final timestep survives)",
                subjects=(location,),
                data={"latency": bound})


# ----------------------------------------------------------------------
# C002 — dead TT: destination unreachable from source
# ----------------------------------------------------------------------
def check_dead_traveling_times(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """A ``travelingTime(l1, l2, v)`` only ever binds on a trajectory that
    visits ``l1`` and later ``l2`` — impossible when ``l2`` is unreachable
    from ``l1`` in the DU-induced step graph."""
    for (source, destination), steps in sorted(
            ctx.constraints.traveling_time_bounds.items()):
        if not ctx.reachability.can_ever_reach(source, destination):
            yield Diagnostic(
                "C002", Severity.WARNING,
                f"travelingTime({source}, {destination}, {steps}) can "
                f"never bind: {destination} is unreachable from {source} "
                f"in the DU-induced step graph (over "
                f"{len(ctx.reachability.universe)} locations), so the "
                f"constraint is dead",
                subjects=(source, destination),
                data={"steps": steps})


# ----------------------------------------------------------------------
# C003 — redundant constraints
# ----------------------------------------------------------------------
def check_redundant_constraints(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Duplicate statements and bounds dominated by stricter stated bounds.

    ``ConstraintSet`` already keeps the strictest bound per subject, so
    neither kind changes the semantics — the diagnostics exist so stated
    constraint sets stay canonical.
    """
    counts = Counter(ctx.constraints)
    for constraint, copies in sorted(counts.items(),
                                     key=lambda pair: str(pair[0])):
        if copies > 1:
            yield Diagnostic(
                "C003", Severity.INFO,
                f"{constraint} is stated {copies} times; the duplicates "
                f"change nothing",
                subjects=(str(constraint),))
    tt_bounds = ctx.constraints.traveling_time_bounds
    lt_bounds = ctx.constraints.latency_bounds
    for constraint in sorted(counts, key=str):
        if isinstance(constraint, TravelingTime):
            binding = tt_bounds[(constraint.loc_a, constraint.loc_b)]
            if constraint.steps < binding:
                yield Diagnostic(
                    "C003", Severity.INFO,
                    f"{constraint} is dominated by the stricter stated "
                    f"bound travelingTime({constraint.loc_a}, "
                    f"{constraint.loc_b}, {binding})",
                    subjects=(str(constraint),))
        elif isinstance(constraint, Latency):
            binding = lt_bounds[constraint.location]
            if constraint.duration < binding:
                yield Diagnostic(
                    "C003", Severity.INFO,
                    f"{constraint} is dominated by the stricter stated "
                    f"bound latency({constraint.location}, {binding})",
                    subjects=(str(constraint),))


# ----------------------------------------------------------------------
# C004 — dead locations
# ----------------------------------------------------------------------
def _mass_carrying_locations(ctx: AnalysisContext) -> Optional[Set[str]]:
    """The locations some prior/reading can put mass on (``None`` = unknown)."""
    if ctx.lsequence is not None:
        carrying: Set[str] = set()
        for tau in range(ctx.lsequence.duration):
            carrying.update(ctx.lsequence.support(tau))
        return carrying
    prior_names = getattr(ctx.prior, "location_names", None)
    if prior_names is not None:
        return set(prior_names)
    return None


def check_dead_locations(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """A location with no DU-legal out-steps can only end a trajectory; one
    with no DU-legal in-steps can only start it.  Either way, prior mass
    placed on it at any interior timestep is guaranteed loss."""
    carrying = _mass_carrying_locations(ctx)
    for location in ctx.universe:
        has_out = bool(ctx.reachability.successors(location))
        has_in = bool(ctx.reachability.predecessors(location))
        if has_out and has_in:
            continue
        if not has_out and not has_in:
            detail = ("no DU-legal incoming or outgoing steps (not even a "
                      "stay): it cannot appear in any trajectory of 2+ "
                      "timesteps")
        elif not has_out:
            detail = ("no DU-legal outgoing steps (not even a stay): it "
                      "can only appear at the final timestep")
        else:
            detail = ("no DU-legal incoming steps (not even a stay): it "
                      "can only appear at timestep 0")
        carries_mass = carrying is None or location in carrying
        yield Diagnostic(
            "C004",
            Severity.WARNING if carries_mass else Severity.INFO,
            f"dead location {location}: {detail}"
            + ("" if carries_mass
               else " (no supplied reading/prior puts mass on it)"),
            subjects=(location,))


# ----------------------------------------------------------------------
# C005 — zero-mass pre-check for a concrete reading sequence
# ----------------------------------------------------------------------
def check_zero_mass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """The boolean forward pass of :mod:`repro.analysis.precheck`."""
    if ctx.lsequence is None:
        return
    failed_at = first_dead_timestep(
        ctx.lsequence, ctx.constraints,
        strict_truncation=ctx.strict_truncation)
    if failed_at is None:
        return
    if failed_at == 0:
        where = "no source location satisfies the constraints at timestep 0"
    else:
        where = (f"every interpretation of the readings dies entering "
                 f"timestep {failed_at}")
    yield Diagnostic(
        "C005", Severity.ERROR,
        f"zero valid mass: {where}; conditioning is undefined and "
        f"Algorithm 1 would raise ZeroMassError "
        f"(repro.core.diagnostics.diagnose gives a per-move account)",
        data={"failed_at": failed_at})


# ----------------------------------------------------------------------
# C006 — ct-graph blowup estimate
# ----------------------------------------------------------------------
def ctgraph_size_bounds(lsequence: LSequence,
                        constraints: ConstraintSet) -> List[int]:
    """A per-timestep upper bound on the number of ct-graph node states.

    A node state is ``(location, stay, departures)``.  Per candidate
    location ``l`` at timestep ``tau`` the bound multiplies:

    * the stay values — ``latency(l, d)`` admits ``{1..d-1}`` plus the
      non-binding ``None``, i.e. ``d`` values (1 without a bound);
    * per TT-source ``l' != l``: absence, or one entry ``(t, l')`` for
      each ``t`` in the ``maxTravelingTime(l')`` window where ``l'`` has
      prior support.

    The bound never underestimates (it ignores DU/TT pruning and the
    l-sequence-aware departure filter, which only shrink the state space);
    computing it costs ``O(T * L * |TT sources| * log T)``.
    """
    tt_sources = sorted(constraints.tt_sources)
    support_times: Dict[str, List[int]] = {source: [] for source in tt_sources}
    for tau in range(lsequence.duration):
        for location in lsequence.support(tau):
            if location in support_times:
                support_times[location].append(tau)

    bounds: List[int] = []
    for tau in range(lsequence.duration):
        total = 0
        for location in lsequence.support(tau):
            latency = constraints.latency_of(location)
            combinations = latency if latency is not None and latency > 1 else 1
            for source in tt_sources:
                if source == location:
                    continue
                window_start = tau - constraints.max_traveling_time(source) + 1
                times = support_times[source]
                low = bisect_left(times, max(0, window_start))
                high = bisect_left(times, tau)
                combinations *= 1 + (high - low)
            total += combinations
        bounds.append(total)
    return bounds


def check_blowup_estimate(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Report the C006 size bound so callers can budget memory up front."""
    if ctx.lsequence is None:
        return
    bounds = ctgraph_size_bounds(ctx.lsequence, ctx.constraints)
    worst = max(bounds)
    worst_at = bounds.index(worst)
    yield Diagnostic(
        "C006", Severity.INFO,
        f"ct-graph size upper bound: <= {sum(bounds)} node states over "
        f"{len(bounds)} timesteps (worst timestep {worst_at}: <= {worst})",
        data={"total": sum(bounds), "worst": worst,
              "worst_timestep": worst_at, "per_timestep": bounds})
