"""Rule C005 machinery: predicting zero valid mass before Algorithm 1 runs.

Conditioning is undefined when *every* trajectory compatible with the
l-sequence violates some constraint — the divide-by-zero of Definition 1.
Algorithm 1 only discovers this mid-run (or at the very end, in the source
normalisation).  The pre-check here answers the boolean question alone:
it replays the forward phase over bare node states (no probabilities, no
edges, no loss bookkeeping) and reports the first timestep whose frontier
dies, or ``None`` when some valid trajectory exists.

Exactness: the node state ``(location, stay, departures)`` of
:mod:`repro.core.nodes` makes future validity Markov in the state, so a
state surviving to the final level *is* the suffix of a valid trajectory
and the boolean pass agrees with the naive enumerator on every instance
(pinned by a hypothesis property test).  Cost: one set-of-states frontier
per timestep — ``O(T * L^2)`` state expansions with DU-only constraint
sets (states collapse to locations), and the same l-sequence-aware
``TL`` pruning as the real forward phase keeps the state count tractable
when TT constraints are present.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence
from repro.core.nodes import DepartureFilter, NodeState, source_states, successor_state

__all__ = ["first_dead_timestep", "predict_zero_mass"]


def first_dead_timestep(lsequence: LSequence, constraints: ConstraintSet, *,
                        strict_truncation: bool = False) -> Optional[int]:
    """The first timestep at which no legal node state exists, if any.

    ``None`` means some constraint-satisfying trajectory exists (the valid
    prior mass is positive).  A return of ``t`` means every interpretation
    of the readings dies by timestep ``t`` — Algorithm 1 would raise
    :class:`~repro.errors.ZeroMassError` on the same input, after doing
    strictly more work.
    """
    duration = lsequence.duration
    last = duration - 1

    frontier: Set[NodeState] = set()
    for state in source_states(lsequence.support(0), constraints).values():
        if strict_truncation and last == 0 and state[1] is not None:
            continue
        frontier.add(state)
    if not frontier:
        return 0

    departure_filter = (DepartureFilter(lsequence, constraints)
                        if constraints.tt_sources else None)
    for tau in range(duration - 1):
        support = lsequence.support(tau + 1)
        filter_binding = strict_truncation and tau + 1 == last
        next_frontier: Set[NodeState] = set()
        for state in frontier:
            for destination in support:
                successor = successor_state(tau, state, destination,
                                            constraints, departure_filter)
                if successor is None:
                    continue
                if filter_binding and successor[1] is not None:
                    continue
                next_frontier.add(successor)
        if not next_frontier:
            return tau + 1
        frontier = next_frontier
    return None


def predict_zero_mass(lsequence: LSequence, constraints: ConstraintSet, *,
                      strict_truncation: bool = False) -> bool:
    """Whether conditioning the l-sequence would find zero valid mass."""
    return first_dead_timestep(
        lsequence, constraints,
        strict_truncation=strict_truncation) is not None
