"""Static engine/materialisation routing advice (rule C010).

``CleaningOptions(engine="auto")`` historically routed on a hard-coded
duration threshold (``AUTO_COMPACT_MIN_DURATION``).  Duration is a crude
proxy: what actually decides whether the compact engine's memoised
transition rows pay for their fixed cost is the *number of node states*
the forward pass will enumerate — which the constraint envelope bounds
soundly before any cleaning happens.  :func:`advise` turns the envelope's
width bound into an :class:`EngineAdvice`; :func:`recommend_options` is
the hook ``build_ct_graph`` and ``SharedCleaningPlan`` consume to resolve
``engine="auto"`` per object.

Both engines are bit-exact (enforced by tests and the engine benchmark),
so routing can never change cleaning output — only cost.  The state
threshold below is calibrated on the engine benchmark workload so the
crossover matches the empirical reference/compact break-even.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.analysis.envelope import (
    ConstraintEnvelope,
    estimate_ctg_bytes,
    estimate_graph_bytes,
)
from repro.core import kernels
from repro.core.algorithm import CleaningOptions
from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence

__all__ = [
    "AUTO_COMPACT_MIN_STATES",
    "FLAT_ADVICE_MIN_NODE_BYTES",
    "EngineAdvice",
    "advise",
    "recommend_options",
]

#: Predicted node states at and above which the compact engine's memoised
#: transitions beat the reference builder.  Calibrated on the engine
#: benchmark workload (periodic 4-phase supports, TT A<->D, latency B),
#: whose envelope predicts ~20 states per timestep: best-of-9 timings put
#: the cold break-even near a bound of ~205 states (duration 12 there) —
#: reference wins clearly below ~150, compact wins by >=1.3x from ~290 up.
#: 200 splits that band and scales with actual width for narrower or
#: wider instances, unlike the old duration-only heuristic.
AUTO_COMPACT_MIN_STATES = 200

#: Predicted node-form bytes above which materialising flat is advised.
FLAT_ADVICE_MIN_NODE_BYTES = 4 << 20


@dataclass(frozen=True)
class EngineAdvice:
    """One routing verdict, with the predictions that justify it."""

    #: Concrete engine to run ("reference" or "compact").
    engine: str
    #: Advised materialisation ("nodes" or "flat").
    materialize: str
    #: Advised sweep backend ("python" or "numpy"): numpy only when it is
    #: available *and* the envelope predicts at least
    #: :data:`repro.core.kernels.KERNEL_MIN_LEVEL_EDGES` mean edges per
    #: edge level — below that the whole-level ndarray overhead loses to
    #: the plain loops.
    backend: str
    #: Envelope upper bound on total node states.
    predicted_states: int
    #: Envelope upper bound on the widest level.
    peak_level_width: int
    #: Predicted bytes if materialised as ``CTNode`` objects.
    predicted_node_bytes: int
    #: Predicted bytes if materialised as a ``FlatCTGraph``.
    predicted_flat_bytes: int
    #: Predicted on-disk bytes as a ``.ctg`` store entry
    #: (``materialize="store"`` / ``GraphStore``).
    predicted_ctg_bytes: int
    #: Duration of the advised l-sequence.
    duration: int
    #: Whether the envelope already proves ``ZeroMassError``.
    zero_mass: bool
    #: Human-readable justification.
    reason: str


def advise(lsequence: LSequence, constraints: ConstraintSet, *,
           strict_truncation: bool = False,
           envelope: Optional[ConstraintEnvelope] = None) -> EngineAdvice:
    """Static routing advice for one instance.

    Pass ``envelope`` to reuse an already-built
    :class:`~repro.analysis.envelope.ConstraintEnvelope` (e.g. from an
    ``analyze`` run); otherwise one is built here.
    """
    if envelope is None:
        envelope = ConstraintEnvelope(lsequence, constraints,
                                      strict_truncation=strict_truncation)
    widths = envelope.width_bounds()
    total = sum(widths)
    peak = max(widths) if widths else 0
    edges = envelope.edge_bounds()
    node_bytes, flat_bytes = estimate_graph_bytes(widths, edges)
    ctg_bytes = estimate_ctg_bytes(widths, edges)
    # Backend advice mirrors QuerySession's measured-width resolution,
    # but statically: the envelope's edge bounds predict the mean edges
    # per edge level before anything is built.
    mean_edges = sum(edges) / len(edges) if edges else 0.0
    backend = kernels.resolve_backend("auto", mean_edges)
    if envelope.proves_zero_mass:
        engine = "reference"
        reason = ("the envelope empties at timestep "
                  f"{envelope.first_empty_level}: any engine raises "
                  "ZeroMassError before building anything")
    elif total >= AUTO_COMPACT_MIN_STATES:
        engine = "compact"
        reason = (f"predicted <= {total} node states >= "
                  f"{AUTO_COMPACT_MIN_STATES}: memoised transition rows "
                  "amortise over the repeated supports")
    else:
        engine = "reference"
        reason = (f"predicted <= {total} node states < "
                  f"{AUTO_COMPACT_MIN_STATES}: the reference builder's "
                  "lower fixed cost wins on small graphs")
    materialize = ("flat" if node_bytes >= FLAT_ADVICE_MIN_NODE_BYTES
                   else "nodes")
    return EngineAdvice(
        engine=engine,
        materialize=materialize,
        backend=backend,
        predicted_states=total,
        peak_level_width=peak,
        predicted_node_bytes=node_bytes,
        predicted_flat_bytes=flat_bytes,
        predicted_ctg_bytes=ctg_bytes,
        duration=lsequence.duration,
        zero_mass=envelope.proves_zero_mass,
        reason=reason,
    )


def recommend_options(lsequence: LSequence, constraints: ConstraintSet,
                      base: Optional[CleaningOptions] = None, *,
                      envelope: Optional[ConstraintEnvelope] = None
                      ) -> CleaningOptions:
    """Resolve ``engine="auto"``/``backend="auto"`` from the static envelope.

    Explicit choices are respected untouched, and the two fields resolve
    independently — an explicit engine never blocks backend advice and
    vice versa.  ``materialize`` stays consumption-driven (the batch
    runtime already resolves it from whether graphs are kept); the advice
    object's ``materialize``/byte fields remain available through
    :func:`advise` for callers that want the memory verdict too.
    """
    if base is None:
        base = CleaningOptions()
    if base.engine != "auto" and base.backend != "auto":
        return base
    advice = advise(lsequence, constraints,
                    strict_truncation=base.strict_truncation,
                    envelope=envelope)
    return replace(
        base,
        engine=base.engine if base.engine != "auto" else advice.engine,
        backend=(base.backend if base.backend != "auto"
                 else advice.backend))
