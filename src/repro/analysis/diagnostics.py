"""Typed diagnostics for the static constraint/map analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``C001``...),
a :class:`Severity`, a human-readable message, the constraint/location
subjects it is about, and an optional machine-readable ``data`` payload
(used e.g. by the C006 size estimate).  An :class:`AnalysisReport` is an
ordered, immutable collection of diagnostics with text and JSON
renderings — the single return type of :func:`repro.analysis.analyze`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "AnalysisReport"]


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` — the inputs are contradictory or conditioning is provably
    undefined; ``WARNING`` — something is dead or suspicious but cleaning
    can proceed; ``INFO`` — advisory (redundancies, size estimates).
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:
        return self.name


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


@dataclass(frozen=True, eq=False)
class Diagnostic:
    """One analyzer finding.

    ``subjects`` names the locations/constraints the finding is about (for
    grouping and stable sorting); ``data`` carries optional structured
    detail that the JSON rendering exposes verbatim.
    """

    code: str
    severity: Severity
    message: str
    subjects: Tuple[str, ...] = ()
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.code} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "subjects": list(self.subjects),
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload


class AnalysisReport:
    """The ordered findings of one analyzer run."""

    def __init__(self, diagnostics: Tuple[Diagnostic, ...]) -> None:
        self._diagnostics = tuple(diagnostics)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __repr__(self) -> str:
        return (f"AnalysisReport(errors={len(self.errors)}, "
                f"warnings={len(self.warnings)}, infos={len(self.infos)})")

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return self._diagnostics

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def with_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(Severity.INFO)

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        """Every diagnostic carrying the given rule code."""
        return tuple(d for d in self._diagnostics if d.code == code)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    @property
    def max_severity(self) -> Optional[Severity]:
        """The worst severity present (``None`` for a clean report)."""
        worst: Optional[Severity] = None
        for diagnostic in self._diagnostics:
            if worst is None or diagnostic.severity.rank > worst.rank:
                worst = diagnostic.severity
        return worst

    def exit_code(self, strict: bool = False) -> int:
        """The process exit code the CLI maps this report to.

        0 when nothing is wrong; under ``strict``, 1 as soon as any ERROR
        diagnostic is present.
        """
        return 1 if strict and self.has_errors else 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """The human-readable rendering, one line per diagnostic."""
        if not self._diagnostics:
            return "analysis: no findings"
        lines: List[str] = [str(d) for d in self._diagnostics]
        lines.append(f"analysis: {len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s), "
                     f"{len(self.infos)} info(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "analysis-report/1",
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
            "diagnostics": [d.to_dict() for d in self._diagnostics],
        }

    def render_json(self) -> str:
        """The machine-readable rendering (stable key order)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
