"""Abstract interpretation of Definition 3: the constraint envelope.

The forward pass of Algorithm 1 enumerates concrete node states
``(l, delta, TL)`` level by level.  Everything that makes a state *legal*
is decided by the constraints and the per-level supports — not by the
probabilities — so the same transfer rules can be run over an *abstract*
domain that collapses each ``(level, location)`` group of states into one
:class:`AbstractState`:

* the stay counter ``delta`` becomes ``stay_none_possible`` (some covered
  state has a met/absent latency bound) plus a closed interval
  ``[stay_lo, stay_hi]`` of possible binding counters;
* the departure list ``TL`` becomes, per traveling-time source, a
  :class:`DepartureInterval` — ``absent_possible`` (some covered state
  carries no entry for that source) plus the interval
  ``[earliest, latest]`` of possible departure timesteps.  A source with
  no recorded interval is *definitely absent* from every covered state.

The transfer function mirrors ``repro.core.nodes._unchecked_successor``
rule for rule, but evaluates each drop test at the *favourable* end of the
interval and joins branches with boolean ORs and interval hulls.  Both
directions are conservative, which gives the two guarantees the rules
C007-C010 rely on:

* **coverage** — every concrete forward state is covered by the envelope
  cell at its ``(level, location)``, so :meth:`ConstraintEnvelope.\
width_bounds` is a sound per-level upper bound on ct-graph width (C007),
  pointwise at most C006's support-product bound;
* **emptiness** — an empty envelope level admits no concrete state at
  all, so Algorithm 1 must raise :class:`~repro.errors.ZeroMassError`
  (C009).  The converse need not hold: C005's exact forward pass remains
  the complete test.

The byte cost model shared by C006/C010 also lives here: approximate
CPython-on-64-bit constants mirroring ``CTGraph.estimate_size_bytes`` and
``FlatCTGraph.estimate_size_bytes``.  Like those estimators the absolute
numbers are indicative; the node-form/flat-form *ratio* is the meaningful
signal.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence
from repro.core.nodes import DepartureFilter, initial_stay

__all__ = [
    "AbstractState",
    "ConstraintEnvelope",
    "CTG_BYTES_PER_EDGE",
    "CTG_BYTES_PER_NODE",
    "CTG_FIXED_BYTES",
    "DepartureInterval",
    "FLAT_BYTES_PER_EDGE",
    "FLAT_BYTES_PER_NODE",
    "NODE_BYTES_PER_EDGE",
    "NODE_BYTES_PER_NODE",
    "estimate_ctg_bytes",
    "estimate_graph_bytes",
]

#: Approximate bytes per materialised ``CTNode`` (slots object + empty
#: edges dict + parents list + departures tuple), mirroring
#: ``CTGraph.estimate_size_bytes``.
NODE_BYTES_PER_NODE = 176
#: Approximate bytes each edge adds in node form (edges-dict entry, parent
#: slot, boxed probability).
NODE_BYTES_PER_EDGE = 96
#: Approximate bytes per node in ``FlatCTGraph`` form (interned ids in
#: shared tuples), mirroring ``FlatCTGraph.estimate_size_bytes``.
FLAT_BYTES_PER_NODE = 18
#: Approximate bytes per flat edge (CSR child + offset share + boxed
#: probability).
FLAT_BYTES_PER_EDGE = 48


#: Exact bytes per node in the on-disk ``rfid-ctg/ctg@1`` format:
#: location id (i32) + stay (i32) + one CSR offset slot (i32), plus an
#: amortised share of the level-0 source row and section padding.
CTG_BYTES_PER_NODE = 16
#: Exact bytes per on-disk edge: child index (i32) + probability (f64).
CTG_BYTES_PER_EDGE = 12
#: Fixed ``.ctg`` overhead: 64-byte header plus a generous allowance for
#: the interned-name table, the optional stats blob and 8-byte alignment.
CTG_FIXED_BYTES = 512


def estimate_graph_bytes(node_counts: Sequence[int],
                         edge_counts: Sequence[int]) -> Tuple[int, int]:
    """``(node_form_bytes, flat_form_bytes)`` for a graph of that shape."""
    nodes = sum(node_counts)
    edges = sum(edge_counts)
    node_form = NODE_BYTES_PER_NODE * nodes + NODE_BYTES_PER_EDGE * edges
    flat_form = FLAT_BYTES_PER_NODE * nodes + FLAT_BYTES_PER_EDGE * edges
    return node_form, flat_form


def estimate_ctg_bytes(node_counts: Sequence[int],
                       edge_counts: Sequence[int]) -> int:
    """Estimated on-disk size of the graph as a ``.ctg`` file.

    Unlike the in-memory estimates this one is close to exact — the
    format stores fixed-width little-endian columns, so the only slack is
    the per-section alignment and the interned-name table (folded into
    :data:`CTG_FIXED_BYTES` and the section-table term).
    """
    nodes = sum(node_counts)
    edges = sum(edge_counts)
    duration = len(node_counts)
    # Section table: ("loc","stay") per level, ("off","child","prob") per
    # edge level, one source row — 16 bytes of (offset, count) each.
    sections = 2 * duration + 3 * max(0, duration - 1) + 1
    return (CTG_FIXED_BYTES + 16 * sections
            + CTG_BYTES_PER_NODE * nodes + CTG_BYTES_PER_EDGE * edges)


@dataclass(frozen=True)
class DepartureInterval:
    """Abstract value of one ``TL`` entry for a fixed source location."""

    #: Some covered state carries no entry for this source.
    absent_possible: bool
    #: Earliest possible departure timestep among covered states.
    earliest: int
    #: Latest possible departure timestep among covered states.
    latest: int

    @property
    def present_possible(self) -> bool:
        """Some covered state carries an entry (nonempty interval)."""
        return self.earliest <= self.latest


@dataclass(frozen=True)
class AbstractState:
    """Envelope cell: every concrete state at one ``(level, location)``."""

    #: Some covered state has ``delta = None`` (latency met or absent).
    stay_none_possible: bool
    #: Interval of possible binding stay counters (empty iff lo > hi).
    stay_lo: int
    stay_hi: int
    #: Per traveling-time source: the abstract ``TL`` entry.  A source
    #: missing from the mapping is definitely absent.
    departures: Mapping[str, DepartureInterval]

    @property
    def stay_values(self) -> int:
        """How many distinct stay-counter values the cell admits."""
        count = 1 if self.stay_none_possible else 0
        if self.stay_lo <= self.stay_hi:
            count += self.stay_hi - self.stay_lo + 1
        return count


@dataclass
class _Dep:
    """Mutable working form of :class:`DepartureInterval`.

    Invariant: a stored ``_Dep`` always has ``lo <= hi`` — an entry whose
    presence interval empties is definitely absent and is simply dropped
    from the cell's mapping.
    """

    absent: bool
    lo: int
    hi: int


@dataclass
class _Cell:
    """Mutable working form of :class:`AbstractState`.

    Invariant: ``stay_none or stay_lo <= stay_hi`` (a cell covering no
    stay value covers no state and is never stored).
    """

    stay_none: bool
    stay_lo: int
    stay_hi: int
    deps: Dict[str, _Dep] = field(default_factory=dict)


class ConstraintEnvelope:
    """Per-level over-approximation of the feasible forward states.

    Built eagerly: construction runs the abstract forward pass over every
    level in ``O(duration * |support|^2 * |tt_sources|)`` — polynomial
    where the concrete graph may be exponential in the TT windows.
    """

    def __init__(self, lsequence: LSequence, constraints: ConstraintSet, *,
                 strict_truncation: bool = False) -> None:
        self._lsequence = lsequence
        self._constraints = constraints
        self._strict = strict_truncation
        self._first_empty: Optional[int] = None
        self._width_bounds: Optional[List[int]] = None
        self._levels: List[Dict[str, AbstractState]] = []
        self._compute()

    # -- construction ------------------------------------------------------

    def _compute(self) -> None:
        lsequence = self._lsequence
        constraints = self._constraints
        duration = lsequence.duration
        last = duration - 1
        departure_filter = (DepartureFilter(lsequence, constraints)
                            if constraints.tt_sources else None)

        cells: Dict[str, _Cell] = {}
        for location in lsequence.support(0):
            stay = initial_stay(location, constraints)
            # Mirrors the pre-check's source filter: with strict
            # truncation and a one-step sequence, a still-binding stay
            # can never be satisfied.
            if self._strict and last == 0 and stay is not None:
                continue
            if stay is None:
                cells[location] = _Cell(True, 1, 0)
            else:
                cells[location] = _Cell(False, stay, stay)

        working = [cells]
        if not cells:
            self._first_empty = 0
        else:
            for tau in range(duration - 1):
                nxt = self._transfer(working[tau], tau, departure_filter,
                                     last)
                working.append(nxt)
                if not nxt:
                    self._first_empty = tau + 1
                    break
        while len(working) < duration:
            working.append({})
        self._levels = [self._freeze(level) for level in working]

    def _transfer(self, current: Dict[str, _Cell], tau: int,
                  departure_filter: Optional[DepartureFilter],
                  last: int) -> Dict[str, _Cell]:
        constraints = self._constraints
        arrival = tau + 1
        filter_binding = self._strict and arrival == last
        support = self._lsequence.support(arrival)
        nxt: Dict[str, _Cell] = {}
        for location, cell in current.items():
            for destination in support:
                if constraints.forbids_step(location, destination):
                    continue
                if destination == location:
                    successor = self._stay_successor(
                        cell, location, arrival, departure_filter,
                        filter_binding)
                else:
                    successor = self._move_successor(
                        cell, location, destination, tau, departure_filter,
                        filter_binding)
                if successor is not None:
                    self._join(nxt, destination, successor)
        return nxt

    def _stay_successor(self, cell: _Cell, location: str, arrival: int,
                        departure_filter: Optional[DepartureFilter],
                        filter_binding: bool) -> Optional[_Cell]:
        """Rule 2/3: advance the stay counter, age the departures."""
        bound = self._constraints.latency_of(location)
        stay_none = cell.stay_none
        lo, hi = cell.stay_lo, cell.stay_hi
        if lo <= hi:
            lo += 1
            hi += 1
            if bound is None or hi >= bound:
                stay_none = True
            if bound is not None and hi > bound - 1:
                hi = bound - 1
            if lo > hi:
                lo, hi = 1, 0
        if filter_binding:
            # Strict truncation: only delta = None outcomes survive the
            # final level.
            if not stay_none:
                return None
            lo, hi = 1, 0
        deps: Dict[str, _Dep] = {}
        for source, dep in cell.deps.items():
            aged = self._aged(dep, source, arrival, departure_filter)
            if aged is not None:
                deps[source] = aged
        return _Cell(stay_none, lo, hi, deps)

    def _move_successor(self, cell: _Cell, location: str, destination: str,
                        tau: int,
                        departure_filter: Optional[DepartureFilter],
                        filter_binding: bool) -> Optional[_Cell]:
        """Rule 4/5/6: leave ``location``, arrive at ``destination``."""
        constraints = self._constraints
        arrival = tau + 1
        # Rule 4: leaving requires a met latency bound (delta = None).
        if not cell.stay_none:
            return None
        # Rule 5, the implicit departure: a stated direct traveling time
        # (always >= 2) forbids the one-step move outright.
        if constraints.traveling_time(location, destination) is not None:
            return None
        # Rule 5 against the abstract TL: some covered TL value must admit
        # the arrival.  An entry that is definitely present and whose
        # *earliest* departure is still too recent blocks every mover.
        for source, dep in cell.deps.items():
            steps = constraints.traveling_time(source, destination)
            if steps is None:
                continue
            if not dep.absent and arrival - dep.lo < steps:
                return None
        # Strict truncation: an arrival at the final timestep must not
        # open a fresh binding stay.
        if filter_binding and initial_stay(destination, constraints) is not None:
            return None
        deps: Dict[str, _Dep] = {}
        for source, dep in cell.deps.items():
            if source == destination:
                # Rule 6 drops every entry about the arrival location.
                continue
            aged = self._aged(dep, source, arrival, departure_filter)
            if aged is None:
                continue
            steps = constraints.traveling_time(source, destination)
            if steps is not None:
                # A mover that still carries the entry must have departed
                # early enough for this arrival: t <= arrival - steps.
                hi = min(aged.hi, arrival - steps)
                if aged.lo > hi:
                    # Every covered carrier is blocked; only entry-absent
                    # movers remain, and their successors lack the entry.
                    continue
                aged = _Dep(aged.absent, aged.lo, hi)
            deps[source] = aged
        # Rule 6: the implicit new departure ``(tau, location)`` is
        # recorded iff the deterministic keep test holds.
        if location in constraints.tt_sources:
            if departure_filter is not None:
                kept = arrival <= departure_filter.alive_until(tau, location)
            else:
                kept = arrival - tau < constraints.max_traveling_time(location)
            if kept:
                deps[location] = _Dep(False, tau, tau)
        stay = initial_stay(destination, constraints)
        if stay is None:
            return _Cell(True, 1, 0, deps)
        return _Cell(False, stay, stay, deps)

    def _aged(self, dep: _Dep, source: str, arrival: int,
              departure_filter: Optional[DepartureFilter]) -> Optional[_Dep]:
        """Age one entry to node time ``arrival`` (the expiry half of rule
        2/3/6), evaluating each drop test at the endpoint that makes it
        conservative."""
        constraints = self._constraints
        keep_from = arrival - constraints.max_traveling_time(source) + 1
        absent = dep.absent
        lo, hi = dep.lo, dep.hi
        if lo < keep_from:
            # The earliest covered departure ages out, so absence becomes
            # possible; later ones may survive.
            absent = True
            lo = keep_from
        if (departure_filter is not None and not absent
                and arrival > departure_filter.alive_until(lo, source)):
            # ``alive_until`` is monotone nondecreasing in the departure
            # time, so the earliest entry is the first the exact filter
            # drops.
            absent = True
        if lo > hi:
            # No covered departure time survives: definitely absent.
            return None
        return _Dep(absent, lo, hi)

    @staticmethod
    def _join(cells: Dict[str, _Cell], destination: str, cell: _Cell) -> None:
        """Merge ``cell`` into the destination's accumulator: boolean ORs,
        interval hulls, and missing-in-one-branch => absence possible."""
        existing = cells.get(destination)
        if existing is None:
            cells[destination] = cell
            return
        existing.stay_none = existing.stay_none or cell.stay_none
        if cell.stay_lo <= cell.stay_hi:
            if existing.stay_lo > existing.stay_hi:
                existing.stay_lo = cell.stay_lo
                existing.stay_hi = cell.stay_hi
            else:
                existing.stay_lo = min(existing.stay_lo, cell.stay_lo)
                existing.stay_hi = max(existing.stay_hi, cell.stay_hi)
        deps = existing.deps
        for source, dep in cell.deps.items():
            mine = deps.get(source)
            if mine is None:
                deps[source] = _Dep(True, dep.lo, dep.hi)
            else:
                deps[source] = _Dep(mine.absent or dep.absent,
                                    min(mine.lo, dep.lo),
                                    max(mine.hi, dep.hi))
        for source, mine in deps.items():
            if source not in cell.deps and not mine.absent:
                deps[source] = _Dep(True, mine.lo, mine.hi)

    @staticmethod
    def _freeze(cells: Dict[str, _Cell]) -> Dict[str, AbstractState]:
        return {
            location: AbstractState(
                cell.stay_none, cell.stay_lo, cell.stay_hi,
                {source: DepartureInterval(dep.absent, dep.lo, dep.hi)
                 for source, dep in sorted(cell.deps.items())})
            for location, cell in sorted(cells.items())
        }

    # -- queries -----------------------------------------------------------

    @property
    def duration(self) -> int:
        return self._lsequence.duration

    @property
    def strict_truncation(self) -> bool:
        return self._strict

    @property
    def first_empty_level(self) -> Optional[int]:
        """The first level with no feasible state, ``None`` if all are
        inhabited."""
        return self._first_empty

    @property
    def proves_zero_mass(self) -> bool:
        """Whether the envelope alone proves ``ZeroMassError`` (sound, not
        complete — C005 remains the exact test)."""
        return self._first_empty is not None

    def level(self, tau: int) -> Mapping[str, AbstractState]:
        """The envelope cells of one level, keyed by location."""
        return self._levels[tau]

    def state(self, tau: int, location: str) -> Optional[AbstractState]:
        return self._levels[tau].get(location)

    def feasible_locations(self, tau: int) -> Tuple[str, ...]:
        """Support locations that can carry mass at ``tau`` (sorted)."""
        return tuple(self._levels[tau])

    def dead_candidates(self) -> List[Tuple[int, str]]:
        """``(tau, location)`` support entries that can never carry mass:
        their prior probability is guaranteed loss (C008)."""
        dead: List[Tuple[int, str]] = []
        for tau in range(self.duration):
            feasible = self._levels[tau]
            for location in self._lsequence.support(tau):
                if location not in feasible:
                    dead.append((tau, location))
        return dead

    def forced_levels(self) -> List[Tuple[int, str]]:
        """Ambiguous levels statically forced to a single location (C008)."""
        forced: List[Tuple[int, str]] = []
        for tau in range(self.duration):
            feasible = self._levels[tau]
            if len(feasible) == 1 and len(self._lsequence.support(tau)) > 1:
                forced.append((tau, next(iter(feasible))))
        return forced

    def width_bounds(self) -> List[int]:
        """Sound per-level upper bounds on ct-graph width (C007).

        Per cell: (number of admissible stay values) x, per recorded
        departure source, (support times of the source inside the entry's
        interval intersected with the live ``maxTravelingTime`` window,
        plus one if absence is possible).  Distinct concrete states map to
        distinct choices, so the product bounds the cell's state count.
        """
        if self._width_bounds is not None:
            return list(self._width_bounds)
        constraints = self._constraints
        support_times: Dict[str, List[int]] = {
            source: [] for source in constraints.tt_sources}
        for tau in range(self.duration):
            for location in self._lsequence.support(tau):
                if location in support_times:
                    support_times[location].append(tau)
        bounds: List[int] = []
        for tau, level in enumerate(self._levels):
            total = 0
            for location, state in level.items():
                combinations = state.stay_values
                for source, dep in state.departures.items():
                    window_start = tau - constraints.max_traveling_time(source) + 1
                    times = support_times[source]
                    low = bisect_left(times, max(0, window_start, dep.earliest))
                    high = bisect_left(times, min(tau, dep.latest + 1))
                    factor = max(0, high - low)
                    if dep.absent_possible:
                        factor += 1
                    combinations *= factor
                total += combinations
            bounds.append(total)
        self._width_bounds = bounds
        return list(bounds)

    def edge_bounds(self) -> List[int]:
        """Per transition level ``tau -> tau + 1``: an upper bound on edge
        count (each node has at most one successor per feasible
        destination)."""
        widths = self.width_bounds()
        return [widths[tau] * len(self._levels[tau + 1])
                for tau in range(self.duration - 1)]

    def total_bound(self) -> int:
        """Upper bound on the total number of ct-graph nodes."""
        return sum(self.width_bounds())

    def peak_bound(self) -> int:
        """Upper bound on the widest single level."""
        widths = self.width_bounds()
        return max(widths) if widths else 0
