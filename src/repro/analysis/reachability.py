"""The DU-induced step graph and its cached reachability closure.

The DU constraints of a :class:`~repro.core.constraints.ConstraintSet`
induce a directed *step graph* over a finite location universe: an edge
``l1 -> l2`` exists iff ``unreachable(l1, l2)`` is **not** stated.  Several
analyzer rules only depend on this graph:

* C002 asks whether a TT constraint's destination is reachable from its
  source at all (over any number of steps);
* C004 asks whether a location has any legal in- or out-step.

:class:`ReachabilityIndex` materialises successor lists once (``O(L^2)``)
and computes multi-step reachability by BFS on demand, caching each
source's closure — repeated queries (one per TT constraint) cost a set
lookup.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)

__all__ = ["ReachabilityIndex", "location_universe"]


def location_universe(constraints: ConstraintSet,
                      map_model: Optional[object] = None,
                      prior: Optional[object] = None,
                      lsequence: Optional[object] = None) -> Tuple[str, ...]:
    """The finite location universe an analysis run reasons over.

    A map model is authoritative (its ``location_names`` are the paper's
    set ``L``).  Without one, the universe is everything *mentioned*: by a
    constraint, by the prior model (``location_names``), or by a reading
    sequence's supports.  Sorted for deterministic diagnostics.
    """
    names = set()
    if map_model is not None:
        names.update(map_model.location_names)  # type: ignore[attr-defined]
        return tuple(sorted(names))
    for constraint in constraints:
        if isinstance(constraint, Unreachable):
            names.add(constraint.loc_a)
            names.add(constraint.loc_b)
        elif isinstance(constraint, TravelingTime):
            names.add(constraint.loc_a)
            names.add(constraint.loc_b)
        elif isinstance(constraint, Latency):
            names.add(constraint.location)
    prior_names = getattr(prior, "location_names", None)
    if prior_names is not None:
        names.update(prior_names)
    if lsequence is not None:
        duration: int = lsequence.duration  # type: ignore[attr-defined]
        for tau in range(duration):
            names.update(lsequence.support(tau))  # type: ignore[attr-defined]
    return tuple(sorted(names))


class ReachabilityIndex:
    """Successor lists and cached BFS closures of the DU-induced step graph."""

    def __init__(self, universe: Iterable[str],
                 constraints: ConstraintSet) -> None:
        self._universe: Tuple[str, ...] = tuple(universe)
        self._constraints = constraints
        self._successors: Dict[str, Tuple[str, ...]] = {}
        self._predecessors: Dict[str, Tuple[str, ...]] = {}
        predecessors: Dict[str, list] = {name: [] for name in self._universe}
        for source in self._universe:
            allowed = tuple(destination for destination in self._universe
                            if not constraints.forbids_step(source,
                                                            destination))
            self._successors[source] = allowed
            for destination in allowed:
                predecessors[destination].append(source)
        self._predecessors = {name: tuple(sources)
                              for name, sources in predecessors.items()}
        self._closure: Dict[str, FrozenSet[str]] = {}

    @property
    def universe(self) -> Tuple[str, ...]:
        return self._universe

    def can_step(self, loc_a: str, loc_b: str) -> bool:
        """Whether one direct step ``loc_a -> loc_b`` is DU-legal."""
        return not self._constraints.forbids_step(loc_a, loc_b)

    def successors(self, location: str) -> Tuple[str, ...]:
        """Every DU-legal one-step destination (may include ``location``)."""
        return self._successors.get(location, ())

    def predecessors(self, location: str) -> Tuple[str, ...]:
        """Every DU-legal one-step origin (may include ``location``)."""
        return self._predecessors.get(location, ())

    def reachable_from(self, location: str) -> FrozenSet[str]:
        """Locations reachable from ``location`` in one or more steps.

        ``location`` itself is included only if some cycle (possibly the
        self-loop of a legal stay) returns to it.  Cached per source.
        """
        cached = self._closure.get(location)
        if cached is not None:
            return cached
        seen = set(self.successors(location))
        queue = deque(seen)
        while queue:
            here = queue.popleft()
            for there in self.successors(here):
                if there not in seen:
                    seen.add(there)
                    queue.append(there)
        closure = frozenset(seen)
        self._closure[location] = closure
        return closure

    def can_ever_reach(self, loc_a: str, loc_b: str) -> bool:
        """Whether ``loc_b`` is reachable from ``loc_a`` over >= 1 steps."""
        return loc_b in self.reachable_from(loc_a)
