"""The bounded-memory streaming cleaner (see the package docstring).

Correctness rests on the Markov property of the node state
``(location, stay, TL)``: validity and probability of any continuation
depend on the past only through the forward frontier.  The cleaner
therefore keeps just the last ``window`` levels, each as the pair
``(candidate row, forward frontier after that row)``:

* the *last* retained frontier is the live filtered estimate —
  literally the same dict the unbounded
  :class:`~repro.core.incremental.IncrementalCleaner` would hold,
  because both advance it through the shared
  :func:`~repro.core.incremental.advance_frontier`;
* the *first* retained frontier is the exact compact summary of every
  evicted level: its per-state forward mass is the collapsed prefix
  probability of entering the window in that state, which is all
  :meth:`StreamingCleaner.finalize` needs to condition the retained
  window (the window graph's source prior).

Eviction is therefore free — ``popleft()`` on the level deque — and
exact.  What is *lost* is only the ability to answer queries about
evicted timesteps; ``finalize()`` covers the retained window.

Checkpointing serialises the rows, frontiers, and session meta through
:func:`repro.store.format.write_stream_checkpoint` (raw float64, dict
orders preserved), which is what makes a resumed session bit-identical
to an uninterrupted one — pinned by the hypothesis suite in
``tests/test_streaming.py``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.algorithm import (
    CleaningOptions,
    CleaningStats,
    build_ct_graph,
)
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.incremental import (
    FinalizedGraph,
    Frontier,
    advance_frontier_routed,
    coerce_candidate_row,
    frontier_to_dict,
    resolve_finalize_options,
)
from repro.core.lsequence import LSequence
from repro.core.nodes import (
    NodeState,
    state_departures,
    state_location,
    state_stay,
    successor_state,
)
from repro.errors import (
    InconsistentReadingsError,
    ReadingSequenceError,
    StoreFormatError,
    ZeroMassError,
)

__all__ = ["StreamingCleaner", "DEFAULT_WINDOW"]

#: Default retained-window length (timesteps); matches the bounded-memory
#: gate in ``benchmarks/bench_streaming.py``.
DEFAULT_WINDOW = 64

#: One retained level: the candidate row of that timestep and the forward
#: frontier *after* ingesting it — dict form under the python backend, a
#: :class:`~repro.core.kernels.KernelFrontier` under the numpy backend
#: (checkpoints materialise either form to the same dict layout).
_Level = Tuple[Dict[str, float], Frontier]


class StreamingCleaner:
    """Ingest readings indefinitely in O(window) memory.

    The API mirrors :class:`~repro.core.incremental.IncrementalCleaner`
    (``extend`` / ``extend_reading`` / ``filtered_distribution`` /
    ``lsequence`` / ``finalize``) with three differences:

    * memory is bounded — levels older than ``window`` timesteps are
      evicted into the exact entry summary (see the module docstring),
      so :meth:`lsequence` and :meth:`finalize` cover the *retained
      window* ``[base, duration)`` only;
    * :meth:`checkpoint` / :meth:`resume` persist and restore the whole
      session bit-exactly through the ``rfid-ctg/ckpt@1`` format;
    * with evicted prefix levels (``base > 0``) :meth:`finalize` builds
      the window graph with the in-package reference construction —
      ``options.engine``/``options.backend`` apply only while the
      session still covers the full stream (``base == 0``, where the
      call delegates to :func:`~repro.core.algorithm.build_ct_graph`).
    """

    def __init__(self, constraints: ConstraintSet, *,
                 window: int = DEFAULT_WINDOW,
                 options: CleaningOptions = CleaningOptions(),
                 prior=None, frontier_kernel=None) -> None:
        if not isinstance(window, int) or window < 1:
            raise ReadingSequenceError(
                f"window must be a positive integer, got {window!r}")
        self.constraints = constraints
        self.options = options
        self.prior = prior
        self.window = window
        self._levels: Deque[_Level] = deque()
        self._base = 0
        self._duration = 0
        self._output_consumed = False
        # Transition-table cache of the numpy frontier backend; a
        # StreamSessionManager passes one shared FrontierKernel to every
        # session so tables compiled for one object serve the whole
        # fleet.  Created lazily if the numpy path engages without one.
        self._kernel = frontier_kernel

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """Total timesteps ingested over the session's whole lifetime."""
        return self._duration

    @property
    def base(self) -> int:
        """The first *retained* timestep (== how many levels were evicted)."""
        return self._base

    @property
    def retained_duration(self) -> int:
        """How many levels are held in memory (``duration - base``)."""
        return len(self._levels)

    def frontier_size(self) -> int:
        """How many node states the live frontier carries."""
        return len(self._frontier())

    def _frontier(self) -> Frontier:
        return self._levels[-1][1] if self._levels else {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def extend_reading(self, readers) -> None:
        """Append one raw reading (requires a ``prior`` at construction)."""
        if self.prior is None:
            raise ReadingSequenceError(
                "extend_reading needs a prior model; pass prior= to the "
                "constructor or use extend() with a distribution")
        self.extend(self.prior.distribution(readers))

    def extend(self, candidates: Mapping[str, float]) -> None:
        """Append one timestep's location distribution and advance.

        Same contract as
        :meth:`~repro.core.incremental.IncrementalCleaner.extend` — the
        shared :func:`~repro.core.incremental.advance_frontier` makes
        the two cleaners' filtered estimates bit-identical.  When the
        retained window would exceed ``window`` levels, the oldest one
        is evicted; its forward mass already lives on in the next
        level's frontier, so nothing is recomputed.
        """
        row = coerce_candidate_row(candidates, self._duration)
        frontier, self._kernel = advance_frontier_routed(
            self._frontier(), row, self._duration, self.constraints,
            backend=self.options.backend, kernel=self._kernel)
        if not frontier:
            raise InconsistentReadingsError(
                f"no valid continuation at timestep {self._duration}")
        self._levels.append((row, frontier))
        self._duration += 1
        if len(self._levels) > self.window:
            self._levels.popleft()
            self._base += 1

    # ------------------------------------------------------------------
    # live estimates
    # ------------------------------------------------------------------
    def filtered_distribution(self) -> Dict[str, float]:
        """``P(X_now | readings so far, prefix validity)`` — the live estimate."""
        if not self._levels:
            raise ReadingSequenceError("no readings ingested yet")
        frontier = self._frontier()
        if isinstance(frontier, dict):
            raw: Dict[str, float] = {}
            for state, mass in frontier.items():
                location = state_location(state)
                raw[location] = raw.get(location, 0.0) + mass
        else:
            raw = frontier.location_masses()
        total = math.fsum(raw.values())
        return {location: mass / total for location, mass in raw.items()}

    def lsequence(self) -> LSequence:
        """The *retained-window* l-sequence (an independent copy).

        Covers timesteps ``[base, duration)``; evicted rows are gone by
        design.  Mutating the returned object never affects the cleaner.
        """
        if not self._levels:
            raise ReadingSequenceError("no readings ingested yet")
        return LSequence([dict(row) for row, _ in self._levels],
                         _validate=False)

    # ------------------------------------------------------------------
    # window conditioning
    # ------------------------------------------------------------------
    def finalize(self, *, output: Optional[str] = None) -> FinalizedGraph:
        """Condition the retained window and return its ct-graph.

        While nothing has been evicted (``base == 0``) this is exactly
        :meth:`IncrementalCleaner.finalize` — the full batch algorithm
        on the whole stream, same options, same output-path contract.
        With an evicted prefix the graph covers timesteps
        ``[base, duration)``, relabelled ``0..retained_duration - 1``:
        its sources are the entry frontier's node states weighted by
        their collapsed prefix mass, so every marginal and trajectory
        probability over the window equals what the full-stream graph
        would answer (the Markov property; pinned against the unbounded
        reference by the tests).  ``TL`` departure times inside the
        graph are rebased to the same relative labelling (entries about
        evicted timesteps go negative).  The cleaner's state is
        untouched — ingesting and finalizing may interleave freely.
        """
        if not self._levels:
            raise ReadingSequenceError("no readings ingested yet")
        options, consumed = resolve_finalize_options(
            self.options, output, self._output_consumed)
        if self._base == 0:
            graph = build_ct_graph(self.lsequence(), self.constraints,
                                   options)
        else:
            graph = self._window_graph(options)
        if consumed:
            self._output_consumed = True
        return graph

    def _window_graph(self, options: CleaningOptions) -> FinalizedGraph:
        """Algorithm 1's backward conditioning over the retained window.

        Mirrors the reference builder in :mod:`repro.core.algorithm`
        (same sweep, same per-level rescaling, same source damping) with
        two differences dictated by the streaming setting: sources are
        the entry frontier's states with their stored forward mass as
        the prior, and the exact ``TL`` pruning
        (:class:`~repro.core.nodes.DepartureFilter`) is not applied —
        it needs future support, which a live window does not have.
        Extra unpruned states never change probabilities (module docs of
        :mod:`repro.core.incremental`).
        """
        base = self._base
        rows = [row for row, _ in self._levels]
        entry = frontier_to_dict(self._levels[0][1])
        count = len(rows)
        last = count - 1

        def rebased(state: NodeState) -> Tuple:
            departures = tuple((time - base, location) for time, location
                               in state_departures(state))
            return (state_location(state), state_stay(state), departures)

        stats = CleaningStats()
        levels: List[Dict[NodeState, CTNode]] = [{} for _ in range(count)]
        prior_source_probability: Dict[CTNode, float] = {}
        for state, mass in entry.items():
            if options.strict_truncation and last == 0 \
                    and state_stay(state) is not None:
                continue
            node = CTNode(0, *rebased(state))
            levels[0][state] = node
            prior_source_probability[node] = mass
            stats.nodes_created += 1
        if not levels[0]:
            raise ZeroMassError(
                "no entry state of the retained window satisfies the "
                "constraints")

        # Forward: expand absolute node states level by level; the node
        # objects carry the window-relative labelling.
        for index in range(count - 1):
            frontier = levels[index]
            next_level = levels[index + 1]
            candidates = rows[index + 1]
            filter_binding = options.strict_truncation and index + 1 == last
            tau = base + index
            for state, node in frontier.items():
                for destination, probability in candidates.items():
                    successor = successor_state(tau, state, destination,
                                                self.constraints)
                    if successor is None:
                        continue
                    if filter_binding and state_stay(successor) is not None:
                        continue
                    child = next_level.get(successor)
                    if child is None:
                        child = CTNode(index + 1, *rebased(successor))
                        next_level[successor] = child
                        stats.nodes_created += 1
                    node.edges[child] = probability
                    child.parents.append(node)
                    stats.edges_created += 1
            if not next_level:
                raise ZeroMassError(
                    f"no trajectory can legally continue past timestep "
                    f"{tau}")

        # Backward: the survival sweep with per-level rescaling, exactly
        # as in repro.core.algorithm.build_ct_graph.
        survival: Dict[CTNode, float] = {
            node: 1.0 for node in levels[last].values()}
        for index in range(last - 1, -1, -1):
            level = levels[index]
            dead: List[NodeState] = []
            level_max = 0.0
            for state, node in level.items():
                mass = 0.0
                surviving_edges: Dict[CTNode, float] = {}
                for child, probability in node.edges.items():
                    child_survival = survival.get(child, 0.0)
                    if child_survival > 0.0:
                        weight = probability * child_survival
                        surviving_edges[child] = weight
                        mass += weight
                if mass <= 0.0:
                    dead.append(state)
                    stats.edges_removed += len(node.edges)
                    node.edges.clear()
                    continue
                stats.edges_removed += len(node.edges) - len(surviving_edges)
                node.edges = {child: weight / mass
                              for child, weight in surviving_edges.items()}
                survival[node] = mass
                if mass > level_max:
                    level_max = mass
            for state in dead:
                level.pop(state)
                stats.nodes_removed += 1
            if not level:
                raise ZeroMassError(
                    "no trajectory compatible with the readings satisfies "
                    "the constraints")
            if level_max > 0.0:
                for node in level.values():
                    survival[node] /= level_max
        for index in range(1, count):
            for node in levels[index].values():
                node.parents = [parent for parent in node.parents
                                if parent.edges]

        source_probabilities: Dict[CTNode, float] = {}
        for node in levels[0].values():
            source_probabilities[node] = (
                prior_source_probability[node] * survival.get(node, 1.0))
        total = math.fsum(source_probabilities.values())
        if total <= 0.0:
            raise ZeroMassError(
                "the valid trajectories have zero total prior probability")
        for node in source_probabilities:
            source_probabilities[node] /= total

        graph = CTGraph([tuple(level.values()) for level in levels],
                        source_probabilities, stats=stats)
        if options.columnar_materialize:
            flat = graph.to_flat()
            if options.store_materialize:
                from repro.store.format import load_ctg, save_ctg

                save_ctg(flat, options.output)
                return load_ctg(options.output, mmap=True)
            return flat
        return graph

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path, *, extra_meta: Optional[Dict] = None) -> int:
        """Persist the whole session to ``path``; returns bytes written.

        The write is atomic (tmp + ``os.replace``) and carries a CRC —
        see :func:`repro.store.format.write_stream_checkpoint`.  The
        meta section records window, base, duration, the cleaning
        options and the constraint set, so :meth:`resume` needs nothing
        but the file (the ``prior`` is the one runtime object that
        cannot be serialised and must be supplied again).
        ``extra_meta`` entries (e.g. an object id) ride along verbatim
        under keys that must not collide with the session's own.
        """
        from repro.io.jsonio import constraints_to_dicts
        from repro.store.format import write_stream_checkpoint

        ids: Dict[str, int] = {}

        def intern(name: str) -> int:
            lid = ids.get(name)
            if lid is None:
                lid = ids[name] = len(ids)
            return lid

        rows = []
        frontiers = []
        for row, frontier in self._levels:
            rows.append([(intern(location), probability)
                         for location, probability in row.items()])
            frontiers.append([
                (intern(state_location(state)), state_stay(state),
                 tuple((time, intern(location)) for time, location
                       in state_departures(state)), mass)
                for state, mass in frontier_to_dict(frontier).items()])
        meta = {
            "window": self.window,
            "base": self._base,
            "duration": self._duration,
            "output_consumed": self._output_consumed,
            "options": asdict(self.options),
            "constraints": constraints_to_dicts(self.constraints),
        }
        if extra_meta:
            collisions = sorted(set(extra_meta) & set(meta))
            if collisions:
                raise ReadingSequenceError(
                    f"extra_meta keys {collisions} collide with the "
                    "checkpoint's own meta")
            meta.update(extra_meta)
        return write_stream_checkpoint(
            path, meta=meta, location_names=list(ids),
            rows=rows, frontiers=frontiers)

    @classmethod
    def resume(cls, path, *, prior=None,
               frontier_kernel=None) -> "StreamingCleaner":
        """Rebuild a session from a :meth:`checkpoint` file.

        The restored cleaner is bit-identical to the one that wrote the
        checkpoint: same rows, frontiers, dict orders and float bits, so
        continuing the stream gives exactly the uninterrupted results.
        Frontiers resume in dict form regardless of the backend that
        wrote them; the kernel backend re-adopts the live frontier on the
        next :meth:`extend` (``frontier_kernel`` seeds its table cache,
        e.g. a fleet's shared one).  Raises
        :class:`~repro.errors.StoreFormatError` /
        :class:`~repro.errors.StoreChecksumError` on a damaged file.
        """
        from repro.io.jsonio import constraints_from_dicts
        from repro.store.format import read_stream_checkpoint

        payload = read_stream_checkpoint(path)
        meta = payload.meta
        try:
            window = meta["window"]
            base = meta["base"]
            duration = meta["duration"]
            output_consumed = meta["output_consumed"]
            options = CleaningOptions(**meta["options"])
            constraints = constraints_from_dicts(meta["constraints"])
        except (KeyError, TypeError) as error:
            raise StoreFormatError(
                f"{path}: checkpoint meta is missing or malformed "
                f"({error})") from None
        cleaner = cls(constraints, window=window, options=options,
                      prior=prior, frontier_kernel=frontier_kernel)
        names = payload.location_names
        levels: List[_Level] = []
        for row_pairs, frontier_states in zip(payload.rows,
                                              payload.frontiers):
            row = {names[lid]: probability
                   for lid, probability in row_pairs}
            frontier: Dict[NodeState, float] = {}
            for lid, stay, departures, mass in frontier_states:
                state = (names[lid], stay,
                         tuple((time, names[departed])
                               for time, departed in departures))
                frontier[state] = mass
            levels.append((row, frontier))
        if duration - base != len(levels) or len(levels) > window:
            raise StoreFormatError(
                f"{path}: checkpoint meta is inconsistent with its levels "
                f"(base={base}, duration={duration}, "
                f"{len(levels)} levels, window={window})")
        cleaner._restore(levels, base=base, duration=duration,
                         output_consumed=output_consumed)
        return cleaner

    def _restore(self, levels: List[_Level], *, base: int, duration: int,
                 output_consumed: bool) -> None:
        """Adopt checkpointed state (the tail of :meth:`resume`)."""
        self._levels = deque(levels)
        self._base = base
        self._duration = duration
        self._output_consumed = output_consumed
