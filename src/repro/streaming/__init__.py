"""Bounded-memory streaming cleaning with durable checkpoint/resume.

:class:`repro.core.incremental.IncrementalCleaner` keeps every ingested
row, so a long-lived session grows without bound.  This package's
:class:`StreamingCleaner` ingests indefinitely in O(window) memory: once
more than ``window`` timesteps are retained, the oldest level is
*evicted* — its forward mass is already collapsed onto the frontier of
the next level (the filtered-forward recursion is a sufficient
statistic, Section 4 / Definition 3), so dropping the level loses
nothing the live estimate or a window-limited ``finalize()`` needs.
Filtered estimates are bit-identical to the unevicted cleaner, and
:meth:`StreamingCleaner.checkpoint` / :meth:`StreamingCleaner.resume`
round-trip the whole session state through the ``rfid-ctg/ckpt@1``
binary format so a killed process resumes bit-exactly without
reingesting.  See ``docs/streaming.md``.
"""

from repro.streaming.cleaner import StreamingCleaner

__all__ = ["StreamingCleaner"]
