"""Exception hierarchy for the rfid-ctg library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch a single type at an API boundary while tests can assert the precise
subtype.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MapModelError",
    "UnknownLocationError",
    "CalibrationError",
    "ConstraintError",
    "ReadingSequenceError",
    "InconsistentReadingsError",
    "ZeroMassError",
    "GraphInvariantError",
    "PatternSyntaxError",
    "QueryError",
    "BatchConfigurationError",
    "WorkerCrashError",
    "CleaningTimeoutError",
    "StoreError",
    "StoreFormatError",
    "StoreChecksumError",
    "GraphExportError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class MapModelError(ReproError):
    """An invalid building/map description (overlapping rooms, bad doors...)."""


class UnknownLocationError(MapModelError):
    """A location name was used that does not exist on the map."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown location: {name!r}")
        self.name = name


class CalibrationError(ReproError):
    """The reader-calibration matrix is malformed or inconsistent."""


class ConstraintError(ReproError):
    """An integrity constraint is malformed (bad locations, negative times...)."""


class ReadingSequenceError(ReproError):
    """A reading sequence is malformed (gaps, duplicate timestamps...)."""


class InconsistentReadingsError(ReproError):
    """No trajectory compatible with the readings satisfies the constraints.

    Conditioning is undefined in this case (the valid prior mass is zero);
    both the ct-graph algorithm and the naive enumerator raise this error.
    """


class ZeroMassError(InconsistentReadingsError):
    """The total valid prior mass is exactly 0 — conditioning is undefined.

    This is the divide-by-zero of Definition 1: every trajectory compatible
    with the readings violates some constraint, so there is nothing to
    renormalise.  Raised by the conditioning/normalisation paths (both
    Algorithm 1 and the naive enumerator).  The static pre-check
    (``rfid-ctg analyze``, rule C005) predicts this condition *before* the
    expensive forward/backward pass runs.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(
            f"{detail}; the valid prior mass is 0 and conditioning is "
            "undefined — run `rfid-ctg analyze` (repro.analysis.analyze) "
            "on the constraints and readings to locate the contradiction")


class GraphInvariantError(ReproError, AssertionError):
    """A finished ct-graph violates a Definition 4 invariant.

    Raised by :meth:`repro.core.ctgraph.CTGraph.validate`.  The class also
    derives from :class:`AssertionError` so long-standing callers that
    caught assertion failures keep working — but unlike a bare ``assert``,
    the checks are real ``raise`` statements and therefore survive
    ``python -O`` / ``PYTHONOPTIMIZE`` (which strips asserts).
    """


class PatternSyntaxError(ReproError):
    """A trajectory-query pattern string could not be parsed."""


class QueryError(ReproError):
    """A query is invalid for the graph it is evaluated on (e.g. bad timestamp)."""


class BatchConfigurationError(ReproError, ValueError):
    """The batch runtime was configured inconsistently.

    Covers bad ``workers``/``chunk_size``/``timeout_seconds``/``max_retries``
    values and a sequences/constraint-sets length mismatch.  Also derives
    from :class:`ValueError` so long-standing callers that caught the bare
    ``ValueError`` these paths used to raise keep working.
    """


class WorkerCrashError(ReproError):
    """A batch worker process died while cleaning an object.

    Raised semantics differ from the other domain errors: the exception is
    never seen inside a worker (the process is already gone — segfault,
    OOM kill, ``os._exit`` in a native dependency).  The parent-side batch
    runtime synthesises it after quarantining the object whose task kept
    killing the pool, and records it as that object's
    :class:`~repro.runtime.BatchOutcome`.
    """


class CleaningTimeoutError(ReproError):
    """An object exceeded the batch runtime's per-object wall-clock budget.

    Synthesised by the parent process when a worker's future misses its
    ``timeout_seconds`` deadline (typically a pathological ct-graph blowup
    past the C006 bound); the stuck worker is reclaimed and its surviving
    batch-mates are re-driven unharmed.
    """


class StoreError(ReproError):
    """A ``.ctg`` graph-store operation failed (see :mod:`repro.store`)."""


class StoreFormatError(StoreError, ValueError):
    """A ``.ctg`` file is not a well-formed ``rfid-ctg/ctg@1`` payload.

    Covers a wrong magic, an unsupported version, a truncated file, and
    any section whose offsets or counts fall outside the payload — every
    structural defect :func:`repro.store.load_ctg` detects before it hands
    out array views.  Also derives from :class:`ValueError` for callers
    that treat malformed inputs generically.
    """


class StoreChecksumError(StoreError):
    """A ``.ctg`` payload does not match its recorded CRC-32 checksum.

    Raised only when a load explicitly opts into payload verification
    (``load_ctg(path, verify=True)``) — structurally valid but bit-rotted
    files are otherwise indistinguishable from good ones.
    """


class GraphExportError(ReproError, TypeError):
    """An object that is not a ct-graph was handed to a graph exporter.

    The :mod:`repro.io.graphs` functions are typed per graph form
    (``ctgraph_to_dict`` wants the node form, ``flatgraph_to_dict`` the
    columnar form); passing the wrong one raises this instead of an
    incidental ``AttributeError`` deep inside the traversal.  Also derives
    from :class:`TypeError` for callers that treat bad inputs generically.
    """
