"""Exception hierarchy for the rfid-ctg library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch a single type at an API boundary while tests can assert the precise
subtype.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MapModelError",
    "UnknownLocationError",
    "CalibrationError",
    "ConstraintError",
    "ReadingSequenceError",
    "InconsistentReadingsError",
    "ZeroMassError",
    "GraphInvariantError",
    "PatternSyntaxError",
    "QueryError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class MapModelError(ReproError):
    """An invalid building/map description (overlapping rooms, bad doors...)."""


class UnknownLocationError(MapModelError):
    """A location name was used that does not exist on the map."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown location: {name!r}")
        self.name = name


class CalibrationError(ReproError):
    """The reader-calibration matrix is malformed or inconsistent."""


class ConstraintError(ReproError):
    """An integrity constraint is malformed (bad locations, negative times...)."""


class ReadingSequenceError(ReproError):
    """A reading sequence is malformed (gaps, duplicate timestamps...)."""


class InconsistentReadingsError(ReproError):
    """No trajectory compatible with the readings satisfies the constraints.

    Conditioning is undefined in this case (the valid prior mass is zero);
    both the ct-graph algorithm and the naive enumerator raise this error.
    """


class ZeroMassError(InconsistentReadingsError):
    """The total valid prior mass is exactly 0 — conditioning is undefined.

    This is the divide-by-zero of Definition 1: every trajectory compatible
    with the readings violates some constraint, so there is nothing to
    renormalise.  Raised by the conditioning/normalisation paths (both
    Algorithm 1 and the naive enumerator).  The static pre-check
    (``rfid-ctg analyze``, rule C005) predicts this condition *before* the
    expensive forward/backward pass runs.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(
            f"{detail}; the valid prior mass is 0 and conditioning is "
            "undefined — run `rfid-ctg analyze` (repro.analysis.analyze) "
            "on the constraints and readings to locate the contradiction")


class GraphInvariantError(ReproError, AssertionError):
    """A finished ct-graph violates a Definition 4 invariant.

    Raised by :meth:`repro.core.ctgraph.CTGraph.validate`.  The class also
    derives from :class:`AssertionError` so long-standing callers that
    caught assertion failures keep working — but unlike a bare ``assert``,
    the checks are real ``raise`` statements and therefore survive
    ``python -O`` / ``PYTHONOPTIMIZE`` (which strips asserts).
    """


class PatternSyntaxError(ReproError):
    """A trajectory-query pattern string could not be parsed."""


class QueryError(ReproError):
    """A query is invalid for the graph it is evaluated on (e.g. bad timestamp)."""
