"""Exception hierarchy for the rfid-ctg library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch a single type at an API boundary while tests can assert the precise
subtype.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MapModelError",
    "UnknownLocationError",
    "CalibrationError",
    "ConstraintError",
    "ReadingSequenceError",
    "InconsistentReadingsError",
    "PatternSyntaxError",
    "QueryError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class MapModelError(ReproError):
    """An invalid building/map description (overlapping rooms, bad doors...)."""


class UnknownLocationError(MapModelError):
    """A location name was used that does not exist on the map."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown location: {name!r}")
        self.name = name


class CalibrationError(ReproError):
    """The reader-calibration matrix is malformed or inconsistent."""


class ConstraintError(ReproError):
    """An integrity constraint is malformed (bad locations, negative times...)."""


class ReadingSequenceError(ReproError):
    """A reading sequence is malformed (gaps, duplicate timestamps...)."""


class InconsistentReadingsError(ReproError):
    """No trajectory compatible with the readings satisfies the constraints.

    Conditioning is undefined in this case (the valid prior mass is zero);
    both the ct-graph algorithm and the naive enumerator raise this error.
    """


class PatternSyntaxError(ReproError):
    """A trajectory-query pattern string could not be parsed."""


class QueryError(ReproError):
    """A query is invalid for the graph it is evaluated on (e.g. bad timestamp)."""
