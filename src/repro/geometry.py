"""Planar geometry primitives used by the map, grid and reader models.

Everything in this module is deliberately simple: buildings are modelled as
axis-aligned rectangles connected by point-like doors, so the only geometry
the rest of the library needs is points, axis-aligned rectangles, segments,
Euclidean distances and segment/segment intersection tests (the latter are
used to count how many walls a radio signal crosses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["Point", "Rect", "Segment"]


@dataclass(frozen=True)
class Point:
    """A point in the plane (coordinates are metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point", distance: float) -> "Point":
        """The point ``distance`` metres from here in the direction of ``other``.

        If ``other`` coincides with this point, this point is returned
        unchanged (there is no direction to move in).
        """
        total = self.distance_to(other)
        if total == 0.0:
            return self
        ratio = distance / total
        return Point(self.x + (other.x - self.x) * ratio,
                     self.y + (other.y - self.y) * ratio)

    def as_tuple(self) -> Tuple[float, float]:
        """The ``(x, y)`` tuple representation."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle, ``(x0, y0)`` bottom-left to ``(x1, y1)`` top-right."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                "Rect corners must satisfy x0 <= x1 and y0 <= y1, got "
                f"({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, point: Point, *, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the rectangle (boundary included)."""
        return (self.x0 - tol <= point.x <= self.x1 + tol
                and self.y0 - tol <= point.y <= self.y1 + tol)

    def contains_strict(self, point: Point) -> bool:
        """Whether ``point`` lies strictly inside the rectangle."""
        return self.x0 < point.x < self.x1 and self.y0 < point.y < self.y1

    def clamp(self, point: Point) -> Point:
        """The closest point of the rectangle to ``point``."""
        return Point(min(max(point.x, self.x0), self.x1),
                     min(max(point.y, self.y0), self.y1))

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles overlap (touching edges count)."""
        return (self.x0 <= other.x1 and other.x0 <= self.x1
                and self.y0 <= other.y1 and other.y0 <= self.y1)

    def edges(self) -> Iterator["Segment"]:
        """The four boundary segments, counter-clockwise from the bottom."""
        bl = Point(self.x0, self.y0)
        br = Point(self.x1, self.y0)
        tr = Point(self.x1, self.y1)
        tl = Point(self.x0, self.y1)
        yield Segment(bl, br)
        yield Segment(br, tr)
        yield Segment(tr, tl)
        yield Segment(tl, bl)


def _orientation(p: Point, q: Point, r: Point) -> int:
    """Orientation of the ordered triple: 0 collinear, 1 clockwise, -1 ccw."""
    value = (q.y - p.y) * (r.x - q.x) - (q.x - p.x) * (r.y - q.y)
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else -1


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Whether ``q`` lies on the segment ``p``–``r`` assuming collinearity."""
    return (min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
            and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12)


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    @property
    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def intersects(self, other: "Segment") -> bool:
        """Whether the two segments share at least one point."""
        o1 = _orientation(self.a, self.b, other.a)
        o2 = _orientation(self.a, self.b, other.b)
        o3 = _orientation(other.a, other.b, self.a)
        o4 = _orientation(other.a, other.b, self.b)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and _on_segment(self.a, other.a, self.b):
            return True
        if o2 == 0 and _on_segment(self.a, other.b, self.b):
            return True
        if o3 == 0 and _on_segment(other.a, self.a, other.b):
            return True
        if o4 == 0 and _on_segment(other.a, self.b, other.b):
            return True
        return False

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the segment."""
        ax, ay = self.a.x, self.a.y
        bx, by = self.b.x, self.b.y
        px, py = point.x, point.y
        dx, dy = bx - ax, by - ay
        norm_sq = dx * dx + dy * dy
        if norm_sq == 0.0:
            return self.a.distance_to(point)
        t = ((px - ax) * dx + (py - ay) * dy) / norm_sq
        t = min(1.0, max(0.0, t))
        return math.hypot(px - (ax + t * dx), py - (ay + t * dy))
