"""The trajectory generator (Section 6.4, first module).

Each trajectory is generated iteratively, exactly as the paper describes:
the object enters the current location at an *entrance point*, walks (at a
per-leg random velocity) to a random *rest point* inside the location,
stays there for a random latency, walks to a random *exit door*, and the
chosen door determines the next location and its entrance point.  The
result is one ``(floor, x, y)`` position per timestep plus the ground-truth
location labels the accuracy experiments compare against.

Two deliberate refinements over the paper's one-paragraph description
(DESIGN.md §3):

* rests in *transit* locations (corridors, staircases) are much shorter
  than in rooms — this is what makes the paper's choice of excluding
  corridors from latency constraints meaningful;
* staircase flights between floors take ``length / velocity`` seconds, so
  inter-floor travel is as slow as the walking-distance model assumes.

The generated ground truth provably satisfies every constraint inferred
with ``max_speed >= velocity_range[1]`` and
``min_stay <= room_rest_range[0]``: consecutive samples are never more than
the leg velocity apart, rooms are never crossed without resting, and all
moves pass through doors.  An integration test asserts this end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import MapModelError
from repro.geometry import Point
from repro.mapmodel.building import Building, Door, Location

__all__ = ["MovementParameters", "GroundTruthTrajectory", "TrajectoryGenerator"]

#: Margin (metres) kept from footprint boundaries when drawing rest points,
#: so rest positions never sit on a wall / in an ambiguous grid cell.
_REST_MARGIN = 0.3


@dataclass(frozen=True)
class MovementParameters:
    """The motility knobs of the generator (paper values as defaults).

    Velocities are metres per timestep, rests are in timesteps; each rest
    is drawn uniformly from the closed integer range.
    """

    velocity_range: Tuple[float, float] = (1.0, 2.0)
    room_rest_range: Tuple[int, int] = (30, 60)
    transit_rest_range: Tuple[int, int] = (0, 5)

    def __post_init__(self) -> None:
        lo, hi = self.velocity_range
        if not (0 < lo <= hi):
            raise MapModelError(f"bad velocity range: {self.velocity_range}")
        for name, (rlo, rhi) in (("room_rest_range", self.room_rest_range),
                                 ("transit_rest_range", self.transit_rest_range)):
            if not (0 <= rlo <= rhi):
                raise MapModelError(f"bad {name}: {(rlo, rhi)}")


@dataclass
class GroundTruthTrajectory:
    """The generator's output: per-timestep positions and location labels."""

    building: Building
    floors: List[int]
    points: List[Point]
    locations: List[str]

    def __post_init__(self) -> None:
        if not (len(self.floors) == len(self.points) == len(self.locations)):
            raise MapModelError("ground-truth components have different lengths")

    @property
    def duration(self) -> int:
        return len(self.locations)

    def location_at(self, tau: int) -> str:
        return self.locations[tau]

    def visited_locations(self) -> Tuple[str, ...]:
        """Distinct locations in order of first visit."""
        seen: List[str] = []
        for location in self.locations:
            if not seen or seen[-1] != location:
                if location not in seen:
                    seen.append(location)
        return tuple(seen)

    def stay_sequence(self) -> Tuple[Tuple[str, int], ...]:
        """The trajectory as maximal stays ``(location, length)``."""
        stays: List[Tuple[str, int]] = []
        for location in self.locations:
            if stays and stays[-1][0] == location:
                stays[-1] = (location, stays[-1][1] + 1)
            else:
                stays.append((location, 1))
        return tuple(stays)


class TrajectoryGenerator:
    """Generates ground-truth trajectories over a building."""

    def __init__(self, building: Building,
                 parameters: MovementParameters = MovementParameters(),
                 rng: Optional[np.random.Generator] = None) -> None:
        building.validate()
        self.building = building
        self.parameters = parameters
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    def generate(self, duration: int) -> GroundTruthTrajectory:
        """One trajectory of exactly ``duration`` timesteps."""
        if duration < 1:
            raise MapModelError(f"duration must be >= 1, got {duration}")
        floors: List[int] = []
        points: List[Point] = []
        labels: List[str] = []

        location = self._random_start_location()
        point = self._entrance_point(location)

        def emit(sample_point: Point) -> bool:
            floors.append(location.floor)
            points.append(sample_point)
            labels.append(location.name)
            return len(labels) >= duration

        # The object is at the entrance at timestep 0.
        if emit(point):
            return GroundTruthTrajectory(self.building, floors, points, labels)

        while True:
            velocity = float(self.rng.uniform(*self.parameters.velocity_range))
            rest_point = self._random_rest_point(location)
            for sample in self._walk(point, rest_point, velocity):
                if emit(sample):
                    return GroundTruthTrajectory(
                        self.building, floors, points, labels)
            point = rest_point
            for _ in range(self._random_rest(location)):
                if emit(point):
                    return GroundTruthTrajectory(
                        self.building, floors, points, labels)

            door = self._random_exit_door(location)
            if door is None:
                # A sealed room: the object can only stay put.
                continue
            exit_point = door.point_in(location.name)
            for sample in self._walk(point, exit_point, velocity):
                if emit(sample):
                    return GroundTruthTrajectory(
                        self.building, floors, points, labels)
            point = exit_point

            next_location = self.building.location(door.other(location.name))
            if door.length > 0:
                # A staircase flight: spend its walking time crossing,
                # split between the two stair rooms.
                flight_steps = max(1, int(round(door.length / velocity)))
                steps_here = flight_steps // 2
                for _ in range(steps_here):
                    if emit(point):
                        return GroundTruthTrajectory(
                            self.building, floors, points, labels)
            location = next_location
            point = door.point_in(location.name)
            if door.length > 0:
                flight_steps = max(1, int(round(door.length / velocity)))
                for _ in range(flight_steps - flight_steps // 2):
                    if emit(point):
                        return GroundTruthTrajectory(
                            self.building, floors, points, labels)

    def generate_many(self, duration: int, count: int
                      ) -> List[GroundTruthTrajectory]:
        """``count`` independent trajectories of ``duration`` timesteps."""
        return [self.generate(duration) for _ in range(count)]

    # ------------------------------------------------------------------
    def _random_start_location(self) -> Location:
        names = self.building.location_names
        return self.building.location(names[int(self.rng.integers(len(names)))])

    def _entrance_point(self, location: Location) -> Point:
        doors = self.building.doors_of(location.name)
        if doors:
            door = doors[int(self.rng.integers(len(doors)))]
            return location.rect.clamp(door.point_in(location.name))
        return location.rect.center

    def _random_rest_point(self, location: Location) -> Point:
        rect = location.rect
        margin_x = min(_REST_MARGIN, rect.width / 4.0)
        margin_y = min(_REST_MARGIN, rect.height / 4.0)
        x = float(self.rng.uniform(rect.x0 + margin_x, rect.x1 - margin_x))
        y = float(self.rng.uniform(rect.y0 + margin_y, rect.y1 - margin_y))
        return Point(x, y)

    def _random_rest(self, location: Location) -> int:
        lo, hi = (self.parameters.transit_rest_range if location.is_transit
                  else self.parameters.room_rest_range)
        return int(self.rng.integers(lo, hi + 1))

    def _random_exit_door(self, location: Location) -> Optional[Door]:
        doors = self.building.doors_of(location.name)
        if not doors:
            return None
        return doors[int(self.rng.integers(len(doors)))]

    def _walk(self, start: Point, end: Point, velocity: float) -> List[Point]:
        """Per-timestep samples of a straight walk (excluding ``start``).

        The final (possibly shorter) step lands exactly on ``end``; every
        consecutive pair of samples is at most ``velocity`` apart.
        """
        distance = start.distance_to(end)
        samples: List[Point] = []
        travelled = velocity
        while travelled < distance:
            samples.append(start.towards(end, travelled))
            travelled += velocity
        samples.append(end)
        return samples
