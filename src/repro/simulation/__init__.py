"""The synthetic data generator of Section 6.4 and the SYN1/SYN2 datasets.

Two modules mirror the paper's two generator components:

* :mod:`repro.simulation.trajectories` — the *trajectory generator*:
  continuous ground-truth movement (entrance point -> rest point -> exit
  point, random rests and walking speeds);
* :mod:`repro.simulation.readings` — the *reading generator*: per-second
  probabilistic reader detections driven by the detection matrix.

:mod:`repro.simulation.datasets` assembles complete, reproducible datasets
(building + readers + calibration + trajectories + readings).
"""

from repro.simulation.datasets import (
    Dataset,
    GeneratedTrajectory,
    build_dataset,
    syn1_dataset,
    syn2_dataset,
)
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import (
    GroundTruthTrajectory,
    MovementParameters,
    TrajectoryGenerator,
)

__all__ = [
    "GroundTruthTrajectory",
    "MovementParameters",
    "TrajectoryGenerator",
    "ReadingGenerator",
    "GeneratedTrajectory",
    "Dataset",
    "build_dataset",
    "syn1_dataset",
    "syn2_dataset",
]
