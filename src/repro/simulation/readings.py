"""The reading generator (Section 6.4, second module).

Each ground-truth position ``(x, y, tau)`` is mapped to its grid cell, and
each reader ``r`` detects the object with probability ``F[r, c]`` — readers
behave independently, exactly as the paper states.  The matrix used here
should be the *exact* detection matrix (the physical model), while the
priors used for cleaning come from the noisy *calibrated* matrix — the same
distinction as between the real world and the learned model in the paper's
setup.
"""

from __future__ import annotations

from typing import List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.core.lsequence import Reading, ReadingSequence
from repro.errors import MapModelError
from repro.geometry import Point
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import DetectionMatrix
from repro.simulation.trajectories import GroundTruthTrajectory

__all__ = ["ReadingGenerator"]


class ReadingGenerator:
    """Turns ground-truth trajectories into probabilistic reader detections.

    ``ghost_read_rate`` injects *false positives*: at each timestep, every
    reader not detecting the tag additionally fires with this probability
    (multipath reflections, tag cloning, reader cross-talk).  The paper's
    model has only false negatives (``ghost_read_rate = 0``); the
    robustness ablation sweeps this knob.
    """

    def __init__(self, matrix: DetectionMatrix,
                 rng: Optional[np.random.Generator] = None,
                 ghost_read_rate: float = 0.0) -> None:
        if not 0.0 <= ghost_read_rate < 1.0:
            raise MapModelError(
                f"ghost_read_rate must be in [0, 1), got {ghost_read_rate}")
        self.matrix = matrix
        self.grid: Grid = matrix.grid
        self.rng = rng if rng is not None else np.random.default_rng()
        self.ghost_read_rate = ghost_read_rate
        self._reader_names = matrix.reader_names

    def generate(self, trajectory: GroundTruthTrajectory) -> ReadingSequence:
        """The reading sequence observed while ``trajectory`` unfolds."""
        readings: List[Reading] = []
        for tau in range(trajectory.duration):
            cell_index = self._cell_index(trajectory, tau)
            if cell_index is None:
                probabilities = np.zeros(len(self._reader_names))
            else:
                probabilities = self.matrix.cell_column(cell_index)
            if self.ghost_read_rate > 0.0:
                probabilities = np.maximum(probabilities,
                                           self.ghost_read_rate)
            draws = self.rng.random(len(probabilities))
            detected = frozenset(
                self._reader_names[i]
                for i in np.flatnonzero(draws < probabilities))
            readings.append(Reading(tau, detected))
        return ReadingSequence(readings)

    # ------------------------------------------------------------------
    def _cell_index(self, trajectory: GroundTruthTrajectory,
                    tau: int) -> Optional[int]:
        """The grid cell of the object at ``tau``.

        Positions can sit exactly on a footprint boundary (door crossings),
        where the containing grid square may have no cell or a cell of the
        neighbouring location; in that case the point is nudged toward the
        centre of the labelled location, which always has cells.
        """
        floor = trajectory.floors[tau]
        point = trajectory.points[tau]
        cell = self.grid.cell_at(floor, point)
        if cell is not None:
            return cell.index
        location = trajectory.building.location(trajectory.locations[tau])
        nudged = point.towards(location.rect.center,
                               min(1.0, point.distance_to(location.rect.center)))
        cell = self.grid.cell_at(floor, location.rect.clamp(nudged))
        if cell is not None:
            return cell.index
        cell = self.grid.cell_at(floor, location.rect.center)
        if cell is not None:
            return cell.index
        raise MapModelError(
            f"no grid cell found for position {point} in {location.name!r}")
