"""Reproducible datasets: SYN1 and SYN2 (Section 6.1) and custom builds.

A :class:`Dataset` bundles everything one cleaning experiment needs: the
building, its grid, the deployed readers, the exact and calibrated
detection matrices, the prior model and a collection of
(ground truth, readings) trajectory pairs grouped by duration.

The paper's datasets hold 25 trajectories per duration in
{30, 60, 90, 120} minutes.  Running that scale takes a while in pure
Python, so datasets come in named *scales*; benchmarks default to
``small`` and honour ``REPRO_SCALE=paper`` for full-size runs (the
cleaning cost is linear in the duration — Fig. 8 — so the curves' shapes
are preserved).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import ReproError
from repro.mapmodel.building import Building
from repro.mapmodel.distances import WalkingDistances
from repro.mapmodel.floorplans import syn1_building, syn2_building
from repro.mapmodel.grid import DEFAULT_CELL_SIZE, Grid
from repro.rfid.calibration import (
    DEFAULT_CALIBRATION_EPOCHS,
    DetectionMatrix,
    calibrate,
    exact_matrix,
)
from repro.rfid.priors import PriorModel
from repro.rfid.readers import ReaderModel, place_default_readers
from repro.core.lsequence import ReadingSequence
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import (
    GroundTruthTrajectory,
    MovementParameters,
    TrajectoryGenerator,
)

__all__ = [
    "GeneratedTrajectory",
    "Dataset",
    "SCALES",
    "active_scale",
    "build_dataset",
    "syn1_dataset",
    "syn2_dataset",
]

#: Named experiment scales: duration list (in timesteps = seconds) and the
#: number of trajectories per duration.  ``paper`` is the EDBT setup.
SCALES: Dict[str, Tuple[Tuple[int, ...], int]] = {
    "tiny": ((30, 60), 2),
    "small": ((120, 240, 360, 480), 3),
    "medium": ((300, 600, 900, 1200), 5),
    "paper": ((1800, 3600, 5400, 7200), 25),
}


def active_scale(default: str = "small") -> str:
    """The scale selected via the ``REPRO_SCALE`` environment variable."""
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ReproError(
            f"unknown REPRO_SCALE {scale!r}; expected one of {sorted(SCALES)}")
    return scale


@dataclass(frozen=True)
class GeneratedTrajectory:
    """One monitored object: its ground truth and the readings it produced."""

    truth: GroundTruthTrajectory
    readings: ReadingSequence

    @property
    def duration(self) -> int:
        return self.truth.duration


@dataclass
class Dataset:
    """A complete synthetic experiment input."""

    name: str
    building: Building
    grid: Grid
    readers: ReaderModel
    true_matrix: DetectionMatrix
    calibrated_matrix: DetectionMatrix
    prior: PriorModel
    distances: WalkingDistances
    trajectories: Dict[int, List[GeneratedTrajectory]] = field(default_factory=dict)

    @property
    def durations(self) -> Tuple[int, ...]:
        return tuple(sorted(self.trajectories))

    def all_trajectories(self) -> List[GeneratedTrajectory]:
        """Every trajectory, shortest durations first."""
        result: List[GeneratedTrajectory] = []
        for duration in self.durations:
            result.extend(self.trajectories[duration])
        return result

    def __repr__(self) -> str:
        count = sum(len(group) for group in self.trajectories.values())
        return (f"Dataset({self.name!r}, durations={self.durations}, "
                f"trajectories={count})")


def build_dataset(building: Building, *,
                  name: Optional[str] = None,
                  durations: Sequence[int] = (120, 240),
                  per_duration: int = 3,
                  seed: int = 7,
                  cell_size: float = DEFAULT_CELL_SIZE,
                  calibration_epochs: int = DEFAULT_CALIBRATION_EPOCHS,
                  movement: MovementParameters = MovementParameters(),
                  negative_evidence: bool = False,
                  min_probability: float = 0.0) -> Dataset:
    """Generate a full dataset over ``building``; deterministic given ``seed``.

    The reading generator runs on the *exact* detection matrix (the physical
    truth) while the prior model is built from the *calibrated* matrix —
    the learned-model-vs-world mismatch of the paper's setup.
    """
    rng = np.random.default_rng(seed)
    grid = Grid(building, cell_size)
    readers = place_default_readers(building)
    true = exact_matrix(readers, grid)
    calibrated = calibrate(readers, grid, epochs=calibration_epochs, rng=rng)
    prior = PriorModel(calibrated, negative_evidence=negative_evidence,
                       min_probability=min_probability)
    distances = WalkingDistances(building)

    trajectory_generator = TrajectoryGenerator(building, movement, rng)
    reading_generator = ReadingGenerator(true, rng)
    groups: Dict[int, List[GeneratedTrajectory]] = {}
    for duration in durations:
        group: List[GeneratedTrajectory] = []
        for _ in range(per_duration):
            truth = trajectory_generator.generate(duration)
            readings = reading_generator.generate(truth)
            group.append(GeneratedTrajectory(truth, readings))
        groups[int(duration)] = group

    return Dataset(name=name or building.name, building=building, grid=grid,
                   readers=readers, true_matrix=true,
                   calibrated_matrix=calibrated, prior=prior,
                   distances=distances, trajectories=groups)


def syn1_dataset(scale: str = "small", seed: int = 17, **overrides) -> Dataset:
    """The paper's SYN1 dataset (four-floor building) at the given scale."""
    durations, per_duration = SCALES[scale]
    return build_dataset(syn1_building(), name=f"SYN1[{scale}]",
                         durations=durations, per_duration=per_duration,
                         seed=seed, **overrides)


def syn2_dataset(scale: str = "small", seed: int = 29, **overrides) -> Dataset:
    """The paper's SYN2 dataset (eight-floor building) at the given scale."""
    durations, per_duration = SCALES[scale]
    return build_dataset(syn2_building(), name=f"SYN2[{scale}]",
                         durations=durations, per_duration=per_duration,
                         seed=seed, **overrides)
