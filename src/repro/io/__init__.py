"""Serialization: save/load every artefact of the pipeline.

JSON for structured artefacts (buildings, constraints, readings, ground
truth, ct-graphs), ``.npz`` for the dense detection matrices, and Graphviz
DOT export for ct-graph visualisation.  Everything round-trips:
``load_x(save_x(value)) == value`` is covered by the test suite.
"""

from repro.io.archives import load_dataset, save_dataset
from repro.io.graphs import (
    ctgraph_to_dict,
    ctgraph_to_dot,
    flatgraph_to_dict,
    save_ctgraph,
)
from repro.io.jsonio import (
    load_building,
    load_constraints,
    load_readers,
    load_readings,
    load_trajectory,
    save_building,
    save_constraints,
    save_readers,
    save_readings,
    save_trajectory,
)
from repro.io.matrices import load_matrix, save_matrix

__all__ = [
    "save_building", "load_building",
    "save_constraints", "load_constraints",
    "save_readings", "load_readings",
    "save_readers", "load_readers",
    "save_trajectory", "load_trajectory",
    "save_matrix", "load_matrix",
    "save_dataset", "load_dataset",
    "ctgraph_to_dict", "flatgraph_to_dict", "ctgraph_to_dot", "save_ctgraph",
]
