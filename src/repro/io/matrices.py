"""Saving and loading detection matrices (``.npz``).

The matrix alone does not capture its grid; loading therefore requires the
building (the grid is deterministic given building + cell size, both of
which are stored alongside the values).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import ReproError
from repro.mapmodel.building import Building
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import DetectionMatrix

__all__ = ["save_matrix", "load_matrix"]

PathLike = Union[str, Path]

_FORMAT = "rfid-ctg/matrix@1"


def save_matrix(matrix: DetectionMatrix, path: PathLike) -> None:
    """Write a detection matrix (values + reader names + grid spec)."""
    np.savez_compressed(
        Path(path),
        format=np.array(_FORMAT),
        values=matrix.values,
        reader_names=np.array(matrix.reader_names),
        cell_size=np.array(matrix.grid.cell_size),
        building=np.array(matrix.grid.building.name),
    )


def load_matrix(path: PathLike, building: Building) -> DetectionMatrix:
    """Read a matrix written by :func:`save_matrix` against ``building``.

    The grid is rebuilt from the stored cell size; a mismatch between the
    stored building name / cell count and the given building is an error.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if str(archive["format"]) != _FORMAT:
            raise ReproError(f"{path}: not a detection-matrix archive")
        stored_building = str(archive["building"])
        if stored_building != building.name:
            raise ReproError(
                f"{path}: matrix calibrated for building "
                f"{stored_building!r}, not {building.name!r}")
        grid = Grid(building, float(archive["cell_size"]))
        values = archive["values"]
        reader_names = [str(name) for name in archive["reader_names"]]
    return DetectionMatrix(values, grid, reader_names)
