"""JSON serialization of buildings, constraints, readings and ground truth.

The formats are versioned (a ``"format"`` tag per artefact) and minimal:
exactly the information needed to reconstruct the object.  Floats are
written as-is (JSON doubles), so round-trips are exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.constraints import (
    Constraint,
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import Reading, ReadingSequence
from repro.errors import ReproError
from repro.geometry import Point, Rect
from repro.mapmodel.building import Building
from repro.simulation.trajectories import GroundTruthTrajectory

__all__ = [
    "save_building", "load_building", "building_to_dict", "building_from_dict",
    "save_constraints", "load_constraints",
    "constraints_to_dicts", "constraints_from_dicts",
    "save_readings", "load_readings",
    "save_trajectory", "load_trajectory",
    "save_readers", "load_readers",
]

PathLike = Union[str, Path]


def _write(path: PathLike, payload: Dict) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def _read(path: PathLike, expected_format: str) -> Dict:
    payload = json.loads(Path(path).read_text())
    found = payload.get("format")
    if found != expected_format:
        raise ReproError(
            f"{path}: expected format {expected_format!r}, found {found!r}")
    return payload


# ----------------------------------------------------------------------
# buildings
# ----------------------------------------------------------------------

def building_to_dict(building: Building) -> Dict:
    """The JSON-ready representation of a building."""
    return {
        "format": "rfid-ctg/building@1",
        "name": building.name,
        "locations": [
            {
                "name": loc.name,
                "floor": loc.floor,
                "kind": loc.kind,
                "rect": [loc.rect.x0, loc.rect.y0, loc.rect.x1, loc.rect.y1],
            }
            for loc in building.locations
        ],
        "doors": [
            {
                "a": door.loc_a,
                "b": door.loc_b,
                "point_a": list(door.point_a.as_tuple()),
                "point_b": list(door.point_b.as_tuple()),
                "length": door.length,
            }
            for door in building.doors
        ],
    }


def building_from_dict(payload: Dict) -> Building:
    """Reconstruct a building from :func:`building_to_dict` output."""
    building = Building(payload["name"])
    for entry in payload["locations"]:
        x0, y0, x1, y1 = entry["rect"]
        building.add_location(entry["name"], entry["floor"],
                              Rect(x0, y0, x1, y1), kind=entry["kind"])
    for entry in payload["doors"]:
        building.add_door(entry["a"], entry["b"],
                          point=Point(*entry["point_a"]),
                          point_b=Point(*entry["point_b"]),
                          length=entry["length"])
    building.validate()
    return building


def save_building(building: Building, path: PathLike) -> None:
    """Write a building as JSON."""
    _write(path, building_to_dict(building))


def load_building(path: PathLike) -> Building:
    """Read a building written by :func:`save_building`."""
    return building_from_dict(_read(path, "rfid-ctg/building@1"))


# ----------------------------------------------------------------------
# constraints
# ----------------------------------------------------------------------

def _constraint_to_dict(constraint: Constraint) -> Dict:
    if isinstance(constraint, Unreachable):
        return {"kind": "unreachable", "a": constraint.loc_a,
                "b": constraint.loc_b}
    if isinstance(constraint, TravelingTime):
        return {"kind": "travelingTime", "a": constraint.loc_a,
                "b": constraint.loc_b, "steps": constraint.steps}
    if isinstance(constraint, Latency):
        return {"kind": "latency", "location": constraint.location,
                "duration": constraint.duration}
    raise ReproError(f"cannot serialise constraint {constraint!r}")


def _constraint_from_dict(entry: Dict) -> Constraint:
    kind = entry.get("kind")
    if kind == "unreachable":
        return Unreachable(entry["a"], entry["b"])
    if kind == "travelingTime":
        return TravelingTime(entry["a"], entry["b"], entry["steps"])
    if kind == "latency":
        return Latency(entry["location"], entry["duration"])
    raise ReproError(f"unknown constraint kind {kind!r}")


def constraints_to_dicts(constraints: ConstraintSet) -> List[Dict]:
    """The constraint set as JSON-ready dicts (``constraints@1`` entries).

    The list form lets other formats embed a constraint set inside their
    own payload — the stream checkpoints of :mod:`repro.streaming` carry
    one in their meta section so a resumed session can verify it is
    running under the very constraints the checkpoint was taken under.
    """
    return [_constraint_to_dict(c) for c in constraints]


def constraints_from_dicts(entries: Iterable[Dict]) -> ConstraintSet:
    """The inverse of :func:`constraints_to_dicts`."""
    return ConstraintSet(_constraint_from_dict(entry) for entry in entries)


def save_constraints(constraints: ConstraintSet, path: PathLike) -> None:
    """Write a constraint set as JSON."""
    _write(path, {
        "format": "rfid-ctg/constraints@1",
        "constraints": [_constraint_to_dict(c) for c in constraints],
    })


def load_constraints(path: PathLike) -> ConstraintSet:
    """Read a constraint set written by :func:`save_constraints`."""
    payload = _read(path, "rfid-ctg/constraints@1")
    return ConstraintSet(_constraint_from_dict(entry)
                         for entry in payload["constraints"])


# ----------------------------------------------------------------------
# readings
# ----------------------------------------------------------------------

def save_readings(readings: ReadingSequence, path: PathLike) -> None:
    """Write a reading sequence as JSON (one reader list per timestep)."""
    _write(path, {
        "format": "rfid-ctg/readings@1",
        "readings": [sorted(reading.readers) for reading in readings],
    })


def load_readings(path: PathLike) -> ReadingSequence:
    """Read a reading sequence written by :func:`save_readings`."""
    payload = _read(path, "rfid-ctg/readings@1")
    return ReadingSequence(
        Reading(time, frozenset(readers))
        for time, readers in enumerate(payload["readings"]))


# ----------------------------------------------------------------------
# reader deployments
# ----------------------------------------------------------------------

def save_readers(model, path: PathLike) -> None:
    """Write a reader deployment (positions, curves, attenuation) as JSON."""
    _write(path, {
        "format": "rfid-ctg/readers@1",
        "wall_attenuation": model.wall_attenuation,
        "readers": [
            {
                "name": reader.name,
                "floor": reader.floor,
                "position": list(reader.position.as_tuple()),
                "major_radius": reader.major_radius,
                "max_radius": reader.max_radius,
                "major_probability": reader.major_probability,
            }
            for reader in model.readers
        ],
    })


def load_readers(path: PathLike, building: Building):
    """Read a reader deployment written by :func:`save_readers`."""
    from repro.rfid.readers import Reader, ReaderModel

    payload = _read(path, "rfid-ctg/readers@1")
    readers = [
        Reader(name=entry["name"], floor=entry["floor"],
               position=Point(*entry["position"]),
               major_radius=entry["major_radius"],
               max_radius=entry["max_radius"],
               major_probability=entry["major_probability"])
        for entry in payload["readers"]
    ]
    return ReaderModel(building, readers,
                       wall_attenuation=payload["wall_attenuation"])


# ----------------------------------------------------------------------
# ground-truth trajectories
# ----------------------------------------------------------------------

def save_trajectory(trajectory: GroundTruthTrajectory, path: PathLike) -> None:
    """Write a ground-truth trajectory (positions + labels) as JSON.

    The building is referenced by name only — pair the file with a
    building JSON when archiving a dataset.
    """
    _write(path, {
        "format": "rfid-ctg/trajectory@1",
        "building": trajectory.building.name,
        "floors": trajectory.floors,
        "points": [[p.x, p.y] for p in trajectory.points],
        "locations": trajectory.locations,
    })


def load_trajectory(path: PathLike,
                    building: Building) -> GroundTruthTrajectory:
    """Read a ground-truth trajectory written by :func:`save_trajectory`."""
    payload = _read(path, "rfid-ctg/trajectory@1")
    if payload["building"] != building.name:
        raise ReproError(
            f"{path}: trajectory belongs to building "
            f"{payload['building']!r}, not {building.name!r}")
    return GroundTruthTrajectory(
        building=building,
        floors=list(payload["floors"]),
        points=[Point(x, y) for x, y in payload["points"]],
        locations=list(payload["locations"]))
