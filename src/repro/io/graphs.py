"""Exporting ct-graphs: JSON archives and Graphviz DOT.

A serialized ct-graph is self-contained: node states, edges with
conditioned probabilities, and source probabilities.  The JSON form feeds
downstream tooling (and the Lahar-style warehousing the paper points to);
the DOT form is for eyeballing small graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.ctgraph import CTGraph
from repro.errors import GraphExportError

__all__ = ["ctgraph_to_dict", "flatgraph_to_dict", "save_ctgraph",
           "ctgraph_to_dot"]

PathLike = Union[str, Path]


def _is_flat_form(graph: object) -> bool:
    """Whether ``graph`` exposes the columnar (flat) graph surface.

    Duck-typed on the column attributes rather than ``isinstance`` so
    mmap-backed views (:class:`~repro.store.MappedCTGraph`) and
    :class:`~repro.core.flatgraph.FlatCTGraph` are both accepted.
    """
    return all(hasattr(graph, name) for name in
               ("location_names", "locations", "stays", "edge_offsets",
                "edge_children", "edge_probabilities",
                "source_probabilities"))


def ctgraph_to_dict(graph: CTGraph) -> Dict:
    """The JSON-ready representation of a finished ct-graph.

    Nodes get dense ids level by level; states are stored explicitly so
    the archive is interpretable without this library.  Wants the node
    form — hand flat/mmap graphs to :func:`flatgraph_to_dict` (or
    :func:`save_ctgraph`, which dispatches on the form).
    """
    if not isinstance(graph, CTGraph):
        raise GraphExportError(
            f"ctgraph_to_dict wants the node-form CTGraph, got "
            f"{type(graph).__name__}; use flatgraph_to_dict for "
            f"flat/mmap graphs")
    ids = {node: index for index, node in enumerate(graph.nodes())}
    return {
        "format": "rfid-ctg/ctgraph@1",
        "duration": graph.duration,
        "nodes": [
            {
                "id": ids[node],
                "tau": node.tau,
                "location": node.location,
                "stay": node.stay,
                "departures": [[t, l] for t, l in node.departures],
            }
            for node in graph.nodes()
        ],
        "edges": [
            {"from": ids[node], "to": ids[child], "p": probability}
            for node in graph.nodes()
            for child, probability in node.edges.items()
        ],
        "sources": [
            {"id": ids[node], "p": graph.source_probability(node)}
            for node in graph.sources
        ],
    }


def flatgraph_to_dict(graph) -> Dict:
    """The JSON-ready representation of a columnar (flat) ct-graph.

    Accepts :class:`~repro.core.flatgraph.FlatCTGraph` or any
    column-compatible view (an mmap-backed
    :class:`~repro.store.MappedCTGraph` works unchanged).  The layout
    mirrors the in-memory columns — per-level arrays rather than per-node
    records — so the archive is a direct JSON transliteration of the
    ``.ctg`` binary sections (stays stay ``None``, not ``-1``).
    """
    if isinstance(graph, CTGraph) or not _is_flat_form(graph):
        raise GraphExportError(
            f"flatgraph_to_dict wants the columnar graph form "
            f"(FlatCTGraph or a MappedCTGraph view), got "
            f"{type(graph).__name__}; use ctgraph_to_dict for the node "
            f"form")
    def as_list(column) -> list:
        # ndarray / memoryview columns: .tolist() yields plain Python
        # scalars (a bare list() would leak numpy int32 into the JSON).
        return column.tolist() if hasattr(column, "tolist") else list(column)

    duration = graph.duration
    return {
        "format": "rfid-ctg/flatgraph@1",
        "duration": duration,
        "location_names": list(graph.location_names),
        "locations": [as_list(graph.locations[tau])
                      for tau in range(duration)],
        "stays": [as_list(graph.stays[tau]) for tau in range(duration)],
        "edge_offsets": [as_list(graph.edge_offsets[tau])
                         for tau in range(duration - 1)],
        "edge_children": [as_list(graph.edge_children[tau])
                          for tau in range(duration - 1)],
        "edge_probabilities": [as_list(graph.edge_probabilities[tau])
                               for tau in range(duration - 1)],
        "source_probabilities": as_list(graph.source_probabilities),
    }


def save_ctgraph(graph, path: PathLike) -> None:
    """Write a ct-graph archive as JSON — node or flat form.

    Dispatches on the graph's form: a :class:`CTGraph` archives through
    :func:`ctgraph_to_dict`, a flat graph or mmap view through
    :func:`flatgraph_to_dict`.  Anything else raises
    :class:`~repro.errors.GraphExportError`.
    """
    if isinstance(graph, CTGraph):
        payload = ctgraph_to_dict(graph)
    elif _is_flat_form(graph):
        payload = flatgraph_to_dict(graph)
    else:
        raise GraphExportError(
            f"save_ctgraph wants a CTGraph, a FlatCTGraph, or a "
            f"column-compatible view, got {type(graph).__name__}")
    Path(path).write_text(json.dumps(payload))


def ctgraph_to_dot(graph: CTGraph, max_nodes: int = 400) -> str:
    """A Graphviz DOT rendering of the graph (small graphs only).

    Raises ``ValueError`` for graphs above ``max_nodes`` — DOT output for
    huge graphs helps nobody.
    """
    if not isinstance(graph, CTGraph):
        raise GraphExportError(
            f"ctgraph_to_dot wants the node-form CTGraph, got "
            f"{type(graph).__name__}; materialize() a flat/mmap graph "
            f"first if you really want DOT")
    if graph.num_nodes > max_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes; DOT export is capped at "
            f"{max_nodes} (raise max_nodes explicitly if you mean it)")
    ids = {node: index for index, node in enumerate(graph.nodes())}
    sources = set(graph.sources)
    lines = ["digraph ctgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for node in graph.nodes():
        stay = "⊥" if node.stay is None else str(node.stay)
        label = f"t={node.tau}\\n{node.location}\\nstay={stay}"
        if node.departures:
            tl = ",".join(f"({t},{l})" for t, l in node.departures)
            label += f"\\nTL={tl}"
        extra = ""
        if node in sources:
            extra = (", style=filled, fillcolor=lightblue, xlabel=\""
                     f"{graph.source_probability(node):.3f}\"")
        lines.append(f'  n{ids[node]} [label="{label}"{extra}];')
    for node in graph.nodes():
        for child, probability in node.edges.items():
            lines.append(
                f'  n{ids[node]} -> n{ids[child]} '
                f'[label="{probability:.3f}"];')
    lines.append("}")
    return "\n".join(lines)
