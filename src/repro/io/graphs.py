"""Exporting ct-graphs: JSON archives and Graphviz DOT.

A serialized ct-graph is self-contained: node states, edges with
conditioned probabilities, and source probabilities.  The JSON form feeds
downstream tooling (and the Lahar-style warehousing the paper points to);
the DOT form is for eyeballing small graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.ctgraph import CTGraph

__all__ = ["ctgraph_to_dict", "save_ctgraph", "ctgraph_to_dot"]

PathLike = Union[str, Path]


def ctgraph_to_dict(graph: CTGraph) -> Dict:
    """The JSON-ready representation of a finished ct-graph.

    Nodes get dense ids level by level; states are stored explicitly so
    the archive is interpretable without this library.
    """
    ids = {node: index for index, node in enumerate(graph.nodes())}
    return {
        "format": "rfid-ctg/ctgraph@1",
        "duration": graph.duration,
        "nodes": [
            {
                "id": ids[node],
                "tau": node.tau,
                "location": node.location,
                "stay": node.stay,
                "departures": [[t, l] for t, l in node.departures],
            }
            for node in graph.nodes()
        ],
        "edges": [
            {"from": ids[node], "to": ids[child], "p": probability}
            for node in graph.nodes()
            for child, probability in node.edges.items()
        ],
        "sources": [
            {"id": ids[node], "p": graph.source_probability(node)}
            for node in graph.sources
        ],
    }


def save_ctgraph(graph: CTGraph, path: PathLike) -> None:
    """Write a ct-graph archive as JSON."""
    Path(path).write_text(json.dumps(ctgraph_to_dict(graph)))


def ctgraph_to_dot(graph: CTGraph, max_nodes: int = 400) -> str:
    """A Graphviz DOT rendering of the graph (small graphs only).

    Raises ``ValueError`` for graphs above ``max_nodes`` — DOT output for
    huge graphs helps nobody.
    """
    if graph.num_nodes > max_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes; DOT export is capped at "
            f"{max_nodes} (raise max_nodes explicitly if you mean it)")
    ids = {node: index for index, node in enumerate(graph.nodes())}
    sources = set(graph.sources)
    lines = ["digraph ctgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for node in graph.nodes():
        stay = "⊥" if node.stay is None else str(node.stay)
        label = f"t={node.tau}\\n{node.location}\\nstay={stay}"
        if node.departures:
            tl = ",".join(f"({t},{l})" for t, l in node.departures)
            label += f"\\nTL={tl}"
        extra = ""
        if node in sources:
            extra = (", style=filled, fillcolor=lightblue, xlabel=\""
                     f"{graph.source_probability(node):.3f}\"")
        lines.append(f'  n{ids[node]} [label="{label}"{extra}];')
    for node in graph.nodes():
        for child, probability in node.edges.items():
            lines.append(
                f'  n{ids[node]} -> n{ids[child]} '
                f'[label="{probability:.3f}"];')
    lines.append("}")
    return "\n".join(lines)
