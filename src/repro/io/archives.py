"""Dataset archives: persist a complete experiment input as a directory.

An archive holds everything :class:`repro.simulation.datasets.Dataset`
carries — the building, the reader deployment, the exact and calibrated
detection matrices, and every trajectory's readings and ground truth — so
an experiment can be re-run later (or elsewhere) against byte-identical
inputs.

Layout::

    <root>/
      dataset.json            name, cell size, durations, trajectory index
      building.json
      readers.json
      true_matrix.npz
      calibrated_matrix.npz
      trajectories/
        <duration>_<index>.readings.json
        <duration>_<index>.truth.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.io.jsonio import (
    load_building,
    load_readers,
    load_readings,
    load_trajectory,
    save_building,
    save_readers,
    save_readings,
    save_trajectory,
)
from repro.io.matrices import load_matrix, save_matrix
from repro.mapmodel.distances import WalkingDistances
from repro.mapmodel.grid import Grid
from repro.rfid.priors import PriorModel
from repro.simulation.datasets import Dataset, GeneratedTrajectory

__all__ = ["save_dataset", "load_dataset"]

PathLike = Union[str, Path]

_FORMAT = "rfid-ctg/dataset@1"


def save_dataset(dataset: Dataset, root: PathLike) -> None:
    """Write ``dataset`` as a directory archive (created if missing)."""
    root = Path(root)
    (root / "trajectories").mkdir(parents=True, exist_ok=True)

    save_building(dataset.building, root / "building.json")
    save_readers(dataset.readers, root / "readers.json")
    save_matrix(dataset.true_matrix, root / "true_matrix.npz")
    save_matrix(dataset.calibrated_matrix, root / "calibrated_matrix.npz")

    index: List[Dict] = []
    for duration in dataset.durations:
        for i, trajectory in enumerate(dataset.trajectories[duration]):
            stem = f"{duration}_{i}"
            save_readings(trajectory.readings,
                          root / "trajectories" / f"{stem}.readings.json")
            save_trajectory(trajectory.truth,
                            root / "trajectories" / f"{stem}.truth.json")
            index.append({"duration": duration, "index": i, "stem": stem})

    (root / "dataset.json").write_text(json.dumps({
        "format": _FORMAT,
        "name": dataset.name,
        "cell_size": dataset.grid.cell_size,
        "negative_evidence": dataset.prior.negative_evidence,
        "min_probability": dataset.prior.min_probability,
        "ghost_read_rate": dataset.prior.ghost_read_rate,
        "trajectories": index,
    }, indent=2))


def load_dataset(root: PathLike) -> Dataset:
    """Read an archive written by :func:`save_dataset`."""
    root = Path(root)
    manifest = json.loads((root / "dataset.json").read_text())
    if manifest.get("format") != _FORMAT:
        raise ReproError(f"{root}: not a dataset archive")

    building = load_building(root / "building.json")
    readers = load_readers(root / "readers.json", building)
    true_matrix = load_matrix(root / "true_matrix.npz", building)
    calibrated = load_matrix(root / "calibrated_matrix.npz", building)
    grid = true_matrix.grid
    prior = PriorModel(calibrated,
                       negative_evidence=manifest["negative_evidence"],
                       min_probability=manifest["min_probability"],
                       ghost_read_rate=manifest.get("ghost_read_rate", 0.0))

    groups: Dict[int, List[GeneratedTrajectory]] = {}
    for entry in manifest["trajectories"]:
        stem = entry["stem"]
        readings = load_readings(
            root / "trajectories" / f"{stem}.readings.json")
        truth = load_trajectory(
            root / "trajectories" / f"{stem}.truth.json", building)
        groups.setdefault(int(entry["duration"]), []).append(
            GeneratedTrajectory(truth, readings))

    return Dataset(name=manifest["name"], building=building, grid=grid,
                   readers=readers, true_matrix=true_matrix,
                   calibrated_matrix=calibrated, prior=prior,
                   distances=WalkingDistances(building),
                   trajectories=groups)
