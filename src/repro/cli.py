"""Command-line driver: generate data, clean it, query it, run experiments.

Examples::

    rfid-ctg info --dataset syn1 --scale tiny
    rfid-ctg clean --dataset syn1 --scale tiny --constraints DU,LT
    rfid-ctg clean-many --dataset syn1 --scale tiny --workers 4
    rfid-ctg query --dataset syn1 --scale tiny --pattern "? F0_R1[3] ?"
    rfid-ctg experiment --name fig9a --dataset syn1 --scale tiny

The CLI works on the synthetic SYN1/SYN2 datasets (regenerated
deterministically from the seed) — it exists to make the reproduction
explorable without writing Python.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.core.algorithm import (
    BACKENDS,
    ENGINES,
    CleaningOptions,
    build_ct_graph,
)
from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence
from repro.experiments.harness import (
    CONSTRAINT_CONFIGS,
    run_cleaning_experiment,
    run_query_time_experiment,
    run_stay_accuracy_experiment,
    run_trajectory_accuracy_experiment,
)
from repro.experiments.report import (
    accuracy_table,
    cleaning_table,
    query_time_table,
)
from repro.inference import MotilityProfile, infer_constraints
from repro.queries.session import QuerySession
from repro.queries.stay import stay_query
from repro.queries.trajectory import TrajectoryQuery
from repro.simulation.datasets import SCALES, syn1_dataset, syn2_dataset

__all__ = ["main", "build_parser"]

_DATASETS = {"syn1": syn1_dataset, "syn2": syn2_dataset}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfid-ctg",
        description="Clean RFID trajectory data by conditioning under "
                    "integrity constraints (EDBT 2014 reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=sorted(_DATASETS), default="syn1",
                       help="synthetic dataset to (re)generate")
        p.add_argument("--scale", choices=sorted(SCALES), default="tiny",
                       help="dataset scale (durations x trajectories)")
        p.add_argument("--seed", type=int, default=17,
                       help="generator seed (datasets are deterministic)")

    info = sub.add_parser("info", help="describe a dataset")
    add_common(info)

    clean = sub.add_parser("clean", help="clean one trajectory and report stats")
    add_common(clean)
    clean.add_argument("--constraints", default="DU,LT,TT",
                       help="comma-separated subset of DU,LT,TT")
    clean.add_argument("--index", type=int, default=0,
                       help="which trajectory of the dataset to clean")
    clean.add_argument("--engine", choices=ENGINES, default="auto",
                       help="cleaning engine: auto picks the compact one "
                            "for long objects (both are bit-identical)")
    clean.add_argument("--backend", choices=BACKENDS, default="python",
                       help="level-sweep backend: numpy vectorises the "
                            "backward sweep on flat builds, auto picks by "
                            "level width (results match the python oracle)")
    clean.add_argument("--stats", action="store_true",
                       help="also print the construction counters and "
                            "per-phase timings")
    clean.add_argument("--output", default=None, metavar="PATH",
                       help="write the cleaned graph as a binary .ctg "
                            "file (the engine streams its columns "
                            "straight to disk and the reported graph is "
                            "an mmap-backed view of the file)")

    clean_many_cmd = sub.add_parser(
        "clean-many", help="clean a batch of trajectories, optionally in "
                           "parallel worker processes")
    add_common(clean_many_cmd)
    clean_many_cmd.add_argument("--constraints", default="DU,LT,TT",
                                help="comma-separated subset of DU,LT,TT")
    clean_many_cmd.add_argument("--workers", type=int, default=None,
                                help="worker processes (default: CPU count; "
                                     "1 = in-process)")
    clean_many_cmd.add_argument("--chunk-size", type=int, default=None,
                                help="objects per worker task (default: "
                                     "auto)")
    clean_many_cmd.add_argument("--limit", type=int, default=None,
                                help="clean only the first N trajectories")
    clean_many_cmd.add_argument("--engine", choices=ENGINES, default="auto",
                                help="cleaning engine used by the workers")
    clean_many_cmd.add_argument("--backend", choices=BACKENDS,
                                default="python",
                                help="level-sweep backend used by the "
                                     "workers")
    clean_many_cmd.add_argument("--timeout", type=float, default=None,
                                metavar="SECONDS",
                                help="per-object wall-clock budget; an "
                                     "object over budget fails with "
                                     "CleaningTimeoutError while its "
                                     "siblings are unaffected (implies "
                                     "per-object tasks)")
    clean_many_cmd.add_argument("--max-retries", type=int, default=1,
                                help="how often an object whose worker "
                                     "crashed is re-attempted before it "
                                     "is quarantined as WorkerCrashError "
                                     "(default: 1)")
    clean_many_cmd.add_argument("--json", dest="json_out", default=None,
                                help="also write a machine-readable summary "
                                     "to this path")

    store_cmd = sub.add_parser(
        "store", help="batch-clean a dataset into a content-addressed "
                      ".ctg graph store (repeat runs are cache hits)")
    add_common(store_cmd)
    store_cmd.add_argument("--root", required=True, metavar="DIR",
                           help="store directory (created if missing)")
    store_cmd.add_argument("--constraints", default="DU,LT,TT",
                           help="comma-separated subset of DU,LT,TT")
    store_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = in-process); "
                                "workers write .ctg entries and only "
                                "paths cross the pipe")
    store_cmd.add_argument("--limit", type=int, default=None,
                           help="clean only the first N trajectories")
    store_cmd.add_argument("--engine", choices=ENGINES, default="auto",
                           help="cleaning engine used on cache misses")
    store_cmd.add_argument("--backend", choices=BACKENDS, default="python",
                           help="level-sweep backend used on cache misses")
    store_cmd.add_argument("--list", dest="list_only", action="store_true",
                           help="list the store's entries and exit "
                                "(no cleaning)")

    query = sub.add_parser("query", help="run a stay or trajectory query")
    add_common(query)
    query.add_argument("--constraints", default="DU,LT,TT")
    query.add_argument("--index", type=int, default=0)
    query.add_argument("--pattern", help="trajectory pattern, e.g. '? F0_R1[3] ?'")
    query.add_argument("--at", type=int, help="timestep for a stay query")
    query.add_argument("--engine", choices=ENGINES, default="auto",
                       help="cleaning engine feeding the query (results "
                            "are bit-identical)")
    query.add_argument("--backend", choices=BACKENDS, default="python",
                       help="level-sweep backend for cleaning and for the "
                            "QuerySession sweeps (with --flat)")
    query.add_argument("--flat", action="store_true",
                       help="clean straight to the flat columnar form and "
                            "answer through a QuerySession (same numbers, "
                            "less time and memory on long objects)")
    query.add_argument("--stats", action="store_true",
                       help="print cleaning and query timings plus the "
                            "graph representation in use")

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    add_common(experiment)
    experiment.add_argument(
        "--name", required=True,
        choices=["fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c", "size"],
        help="which figure/table of the paper to regenerate")

    analytics = sub.add_parser(
        "analytics", help="MAP route, top-k, uncertainty and visit stats")
    add_common(analytics)
    analytics.add_argument("--constraints", default="DU,LT,TT")
    analytics.add_argument("--index", type=int, default=0)
    analytics.add_argument("--top", type=int, default=3,
                           help="how many most-likely routes to print")

    export = sub.add_parser(
        "export", help="write building / constraints / cleaned graph to disk")
    add_common(export)
    export.add_argument("--constraints", default="DU,LT,TT")
    export.add_argument("--index", type=int, default=0)
    export.add_argument("--out", required=True,
                        help="output directory (created if missing)")

    report = sub.add_parser(
        "report", help="run the full Section 6 evaluation and write a "
                       "Markdown report")
    add_common(report)
    report.add_argument("--out", default="evaluation_report.md",
                        help="where to write the report")
    report.add_argument("--both", action="store_true",
                        help="run SYN1 and SYN2 (default: --dataset only)")

    ql = sub.add_parser(
        "ql", help="run mini-query-language statements on a cleaned graph")
    add_common(ql)
    ql.add_argument("--constraints", default="DU,LT,TT")
    ql.add_argument("--index", type=int, default=0)
    ql.add_argument("--engine", choices=ENGINES, default="auto",
                    help="cleaning engine feeding the statements")
    ql.add_argument("--backend", choices=BACKENDS, default="python",
                    help="level-sweep backend for cleaning and for the "
                         "QuerySession sweeps (with --flat)")
    ql.add_argument("--flat", action="store_true",
                    help="clean straight to the flat columnar form; all "
                         "statements then share one QuerySession's sweeps")
    ql.add_argument("--stats", action="store_true",
                    help="print engine/representation and timings")
    ql.add_argument("statements", nargs="+",
                    help="statements like 'STAY 10', 'MATCH ? F0_R1 ?', "
                         "'TOP 3', 'ENTROPY'")

    analyze_cmd = sub.add_parser(
        "analyze", help="static pre-flight analysis of constraints, map "
                        "and readings (no cleaning run)")
    add_common(analyze_cmd)
    analyze_cmd.add_argument("--constraints", default="DU,LT,TT",
                             help="comma-separated subset of DU,LT,TT "
                                  "(dataset mode)")
    analyze_cmd.add_argument("--constraints-file",
                             help="analyze a constraints JSON file instead "
                                  "of a dataset's inferred constraints")
    analyze_cmd.add_argument("--building-file",
                             help="optional building JSON accompanying "
                                  "--constraints-file (fixes the location "
                                  "universe)")
    analyze_cmd.add_argument("--index", type=int,
                             help="also pre-check the readings of this "
                                  "dataset trajectory (rules C005/C006)")
    analyze_cmd.add_argument("--strict", action="store_true",
                             help="exit with code 1 when any ERROR "
                                  "diagnostic is present")
    analyze_cmd.add_argument("--advise", action="store_true",
                             help="also run the advisory rules (C010: "
                                  "engine/materialisation routing advice; "
                                  "needs readings via --index)")
    analyze_cmd.add_argument("--format", choices=["text", "json"],
                             default="text", help="report rendering")

    lint_cmd = sub.add_parser(
        "lint", help="run the engine-invariant linter (repro.lint, rules "
                     "L001-L009) over source paths")
    lint_cmd.add_argument("paths", nargs="*",
                          help="files or directories to lint (recursively)")
    lint_cmd.add_argument("--format", choices=["text", "json"],
                          default="text", help="report format")
    lint_cmd.add_argument("--select", metavar="CODES",
                          help="comma-separated rule codes to run "
                               "(default: all)")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="print the registered rules and exit")

    serve = sub.add_parser(
        "serve", help="long-lived streaming service: ingest line-delimited "
                      "JSON readings for many objects, emit live filtered "
                      "estimates, checkpoint periodically, resume after a "
                      "kill")
    serve.add_argument("--constraints-file", required=True, metavar="PATH",
                       help="constraints JSON (rfid-ctg/constraints@1, as "
                            "written by `rfid-ctg export`)")
    serve.add_argument("--input", default="-", metavar="PATH",
                       help="readings source: a file of JSON lines like "
                            '{"object": "tag1", "candidates": {"A": 0.7, '
                            '"B": 0.3}}, or - for stdin (default)')
    serve.add_argument("--window", type=int, default=64,
                       help="retained-window length per object; older "
                            "levels are evicted into the exact entry "
                            "summary (default: 64)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for per-object .ckpt files "
                            "(enables checkpointing)")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="checkpoint each object every N ingested "
                            "readings (0: only at exit)")
    serve.add_argument("--resume", action="store_true",
                       help="restore every session found in "
                            "--checkpoint-dir before ingesting; already-"
                            "checkpointed readings in the input are "
                            "skipped instead of reingested")
    serve.add_argument("--max-readings", type=int, default=None, metavar="N",
                       help="stop after ingesting N readings (kill "
                            "simulation / smoke tests)")
    serve.add_argument("--no-final-checkpoint", action="store_true",
                       help="skip the exit checkpoint (simulates an "
                            "abrupt kill after the last periodic one)")
    serve.add_argument("--estimate-every", type=int, default=0, metavar="N",
                       help="emit a live estimate line every N readings "
                            "per object (0: only the final lines)")
    serve.add_argument("--stats-every", type=int, default=0, metavar="N",
                       help="emit a throughput/frontier/checkpoint-lag "
                            "stats line on stderr every N ingested "
                            "readings per object, plus per-shard "
                            "summaries and a stats block in the final "
                            "lines (0: off)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition objects by id hash across N "
                            "worker processes, each with its own "
                            "sessions and shard-NN checkpoint "
                            "subdirectory; stdout is merged in input "
                            "order, byte-identical to --shards 1 "
                            "(default: 1, single process)")
    serve.add_argument("--backend", choices=["auto", "python", "numpy"],
                       default="python",
                       help="frontier-advance backend: 'numpy' engages "
                            "the vectorized kernel when available, "
                            "'auto' engages it for wide frontiers "
                            "(default: python, the parity oracle)")
    serve.add_argument("--follow", action="store_true",
                       help="tail the --input file for appended lines "
                            "instead of stopping at EOF")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="with --follow: exit once no new line arrived "
                            "for this long (default: follow forever)")

    map_cmd = sub.add_parser(
        "map", help="render a floor plan (optionally with a position estimate)")
    add_common(map_cmd)
    map_cmd.add_argument("--floor", type=int, default=0)
    map_cmd.add_argument("--render-scale", type=float, default=1.0,
                         help="metres per character")
    map_cmd.add_argument("--at", type=int,
                         help="also shade the cleaned position at this "
                              "timestep (cleans trajectory --index)")
    map_cmd.add_argument("--constraints", default="DU,LT,TT")
    map_cmd.add_argument("--index", type=int, default=0)
    return parser


def _load_dataset(args: argparse.Namespace):
    builder = _DATASETS[args.dataset]
    return builder(scale=args.scale, seed=args.seed)


def _parse_kinds(text: str) -> List[str]:
    kinds = [token.strip().upper() for token in text.split(",") if token.strip()]
    return kinds


def _cleaned_graph(dataset, args):
    trajectories = dataset.all_trajectories()
    if not 0 <= args.index < len(trajectories):
        raise SystemExit(f"--index must be in [0, {len(trajectories)})")
    trajectory = trajectories[args.index]
    kinds = _parse_kinds(args.constraints)
    constraints = infer_constraints(dataset.building, MotilityProfile(),
                                    kinds=kinds, distances=dataset.distances)
    lsequence = LSequence.from_readings(trajectory.readings, dataset.prior)
    # Commands without --engine/--backend/--flat funnel through here with
    # the defaults (auto engine, python backend, node materialisation).
    options = CleaningOptions(
        engine=getattr(args, "engine", "auto"),
        backend=getattr(args, "backend", "python"),
        materialize="flat" if getattr(args, "flat", False) else "auto",
        output=getattr(args, "output", None))
    return trajectory, lsequence, build_ct_graph(lsequence, constraints,
                                                 options)


def _command_info(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    building = dataset.building
    print(dataset)
    print(f"building: {building}")
    print(f"grid cells: {dataset.grid.num_cells} "
          f"(cell size {dataset.grid.cell_size} m)")
    print(f"readers: {len(dataset.readers)}")
    for duration in dataset.durations:
        print(f"  duration {duration}: "
              f"{len(dataset.trajectories[duration])} trajectories")
    return 0


def _command_clean(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    trajectory, lsequence, graph = _cleaned_graph(dataset, args)
    print(f"trajectory: duration={trajectory.duration}, ground truth visits "
          f"{len(trajectory.truth.visited_locations())} locations")
    print(f"l-sequence: {lsequence}")
    print(f"ct-graph:  {graph}")
    print(f"valid trajectories represented: {graph.num_valid_trajectories()}")
    print(f"estimated size: {graph.estimate_size_bytes() / 1024:.0f} kB")
    if args.output:
        import os as _os
        print(f"wrote {args.output} "
              f"({_os.path.getsize(args.output)} bytes, mmap-served)")
    truth = tuple(trajectory.truth.locations)
    print(f"conditioned P(ground truth) = "
          f"{graph.trajectory_probability(truth):.3e}")
    if args.stats and graph.stats is not None:
        stats = graph.stats
        print(f"stats: {stats.nodes_kept} nodes / {stats.edges_kept} edges "
              f"kept (of {stats.nodes_created} / {stats.edges_created} "
              "created)")
        print(f"timings: forward {stats.forward_seconds:.4f} s, "
              f"backward {stats.backward_seconds:.4f} s "
              f"(engine: {args.engine})")
    return 0


def _command_clean_many(args: argparse.Namespace) -> int:
    from repro.runtime import clean_many

    dataset = _load_dataset(args)
    trajectories = dataset.all_trajectories()
    if args.limit is not None:
        trajectories = trajectories[:max(0, args.limit)]
    if not trajectories:
        print("nothing to clean", file=sys.stderr)
        return 2
    kinds = _parse_kinds(args.constraints)
    constraints = infer_constraints(dataset.building, MotilityProfile(),
                                    kinds=kinds, distances=dataset.distances)
    # Raw readings go in; the workers interpret them through the prior.
    result = clean_many([t.readings for t in trajectories], constraints,
                        options=CleaningOptions(engine=args.engine,
                                                backend=args.backend),
                        workers=args.workers, chunk_size=args.chunk_size,
                        prior=dataset.prior, timeout_seconds=args.timeout,
                        max_retries=args.max_retries)

    print(f"{'#':>4}  {'duration':>8}  {'nodes':>7}  {'edges':>8}  "
          f"{'seconds':>8}  status")
    for trajectory, outcome in zip(trajectories, result):
        if outcome.ok:
            print(f"{outcome.index:>4}  {trajectory.duration:>8}  "
                  f"{outcome.graph.num_nodes:>7}  "
                  f"{outcome.graph.num_edges:>8}  "
                  f"{outcome.seconds:>8.3f}  ok")
        else:
            print(f"{outcome.index:>4}  {trajectory.duration:>8}  "
                  f"{'-':>7}  {'-':>8}  {outcome.seconds:>8.3f}  "
                  f"FAILED ({outcome.error_type})")
    stats = result.aggregate_stats()
    print(f"\nobjects: {len(result)}  cleaned: {result.cleaned}  "
          f"failed: {len(result.failures)}")
    print(f"workers: {result.workers}  chunk size: {result.chunk_size}"
          + (f"  pool respawns: {result.respawns}" if result.respawns
             else ""))
    print(f"wall-clock: {result.wall_seconds:.3f} s  "
          f"summed compute: {result.compute_seconds:.3f} s")
    print(f"aggregate: {stats.nodes_kept} nodes / {stats.edges_kept} edges "
          f"kept (of {stats.nodes_created} / {stats.edges_created} created)")

    if args.json_out:
        import json

        payload = {
            "dataset": dataset.name,
            "scale": args.scale,
            "constraints": kinds,
            "workers": result.workers,
            "chunk_size": result.chunk_size,
            "respawns": result.respawns,
            "objects": len(result),
            "cleaned": result.cleaned,
            "failed": len(result.failures),
            "wall_seconds": result.wall_seconds,
            "compute_seconds": result.compute_seconds,
            "outcomes": [
                {"index": o.index, "ok": o.ok, "seconds": o.seconds,
                 "nodes": o.graph.num_nodes if o.ok else None,
                 "edges": o.graph.num_edges if o.ok else None,
                 "error_type": o.error_type, "error": o.error}
                for o in result],
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_out}")
    return 0 if not result.failures else 1


def _command_store(args: argparse.Namespace) -> int:
    from repro.runtime import clean_many
    from repro.store import GraphStore

    store = GraphStore(args.root)
    if args.list_only:
        for key in store.keys():
            path = store.path_for(key)
            with store.load(key) as view:
                print(f"{key[:16]}…  {path.stat().st_size:>10} B  {view}")
        print(store)
        return 0
    dataset = _load_dataset(args)
    trajectories = dataset.all_trajectories()
    if args.limit is not None:
        trajectories = trajectories[:max(0, args.limit)]
    if not trajectories:
        print("nothing to clean", file=sys.stderr)
        return 2
    kinds = _parse_kinds(args.constraints)
    constraints = infer_constraints(dataset.building, MotilityProfile(),
                                    kinds=kinds, distances=dataset.distances)
    result = clean_many([t.readings for t in trajectories], constraints,
                        options=CleaningOptions(engine=args.engine,
                                                backend=args.backend),
                        workers=args.workers, prior=dataset.prior,
                        store=store)
    hits = sum(1 for o in result if o.cache_hit)
    for outcome in result:
        if outcome.ok:
            status = "hit " if outcome.cache_hit else "miss"
            print(f"{outcome.index:>4}  {status}  {outcome.ctg_path}")
            outcome.graph.close()
        else:
            print(f"{outcome.index:>4}  FAILED ({outcome.error_type}): "
                  f"{outcome.error}")
    print(f"\nobjects: {len(result)}  cleaned: {result.cleaned}  "
          f"failed: {len(result.failures)}")
    print(f"cache: {hits} hit(s), {len(result) - hits} miss(es)")
    print(store)
    return 0 if not result.failures else 1


def _command_query(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    clean_started = time.perf_counter()
    trajectory, lsequence, graph = _cleaned_graph(dataset, args)
    clean_seconds = time.perf_counter() - clean_started
    session = None if isinstance(graph, CTGraph) else \
        QuerySession(graph, backend=args.backend)
    truth = tuple(trajectory.truth.locations)
    did_something = False
    query_started = time.perf_counter()
    if args.at is not None:
        if session is not None:
            answer = session.location_marginal(args.at)
        else:
            answer = stay_query(graph, args.at)
        print(f"stay query at {args.at} (truth: {truth[args.at]}):")
        for location, probability in sorted(answer.items(),
                                            key=lambda kv: -kv[1])[:5]:
            print(f"  {location}: {probability:.3f}")
        did_something = True
    if args.pattern:
        query = TrajectoryQuery(args.pattern)
        probability = query.probability(
            session.graph if session is not None else graph)
        print(f"trajectory query {args.pattern!r}: "
              f"yes with p={probability:.3f} "
              f"(ground truth: {query.matches(truth)})")
        did_something = True
    if not did_something:
        print("nothing to do: pass --at and/or --pattern", file=sys.stderr)
        return 2
    if args.stats:
        representation = "flat (QuerySession)" if session is not None \
            else "nodes (CTGraph)"
        print(f"stats: engine={args.engine}, representation={representation}")
        print(f"timings: clean {clean_seconds:.4f} s, "
              f"queries {time.perf_counter() - query_started:.4f} s")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    name = args.name
    if name in ("fig8a", "fig8b", "size"):
        measurements = run_cleaning_experiment(dataset)
        print(cleaning_table(measurements))
    elif name == "fig8c":
        measurements = run_query_time_experiment(dataset)
        print(query_time_table(measurements))
    elif name == "fig9a":
        measurements = run_stay_accuracy_experiment(dataset)
        print(accuracy_table(measurements))
    elif name == "fig9b":
        measurements = run_trajectory_accuracy_experiment(dataset)
        print(accuracy_table(measurements))
    elif name == "fig9c":
        measurements = run_trajectory_accuracy_experiment(
            dataset, by_query_length=True)
        print(accuracy_table(measurements))
    return 0


def _command_analytics(args: argparse.Namespace) -> int:
    from repro.queries.analytics import (
        expected_visit_counts,
        top_k_trajectories,
        uncertainty_reduction,
    )

    dataset = _load_dataset(args)
    trajectory, lsequence, graph = _cleaned_graph(dataset, args)
    truth = tuple(trajectory.truth.locations)

    print(f"uncertainty reduction: "
          f"{uncertainty_reduction(lsequence, graph):.3f} bits/step")

    print(f"\ntop {args.top} most likely routes:")
    for rank, (route, probability) in enumerate(
            top_k_trajectories(graph, args.top), start=1):
        compact = [route[0]]
        for location in route[1:]:
            if location != compact[-1]:
                compact.append(location)
        marker = " (= ground truth)" if route == truth else ""
        print(f"  #{rank} p={probability:.3e}: "
              f"{' -> '.join(compact)}{marker}")

    print("\nexpected time per location (top 5):")
    totals = expected_visit_counts(graph)
    for location, steps in sorted(totals.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {location:16s} {steps:8.1f} steps")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.io.graphs import save_ctgraph
    from repro.io.jsonio import (
        save_building,
        save_constraints,
        save_readings,
        save_trajectory,
    )
    from repro.io.matrices import save_matrix

    dataset = _load_dataset(args)
    trajectory, lsequence, graph = _cleaned_graph(dataset, args)
    kinds = _parse_kinds(args.constraints)
    constraints = infer_constraints(dataset.building, MotilityProfile(),
                                    kinds=kinds, distances=dataset.distances)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    save_building(dataset.building, out / "building.json")
    save_constraints(constraints, out / "constraints.json")
    save_matrix(dataset.calibrated_matrix, out / "matrix.npz")
    save_readings(trajectory.readings, out / "readings.json")
    save_trajectory(trajectory.truth, out / "ground_truth.json")
    save_ctgraph(graph, out / "ctgraph.json")
    for name in ("building.json", "constraints.json", "matrix.npz",
                 "readings.json", "ground_truth.json", "ctgraph.json"):
        print(f"wrote {out / name}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.suite import render_report, run_full_suite

    if args.both:
        datasets = [_DATASETS[name](scale=args.scale, seed=args.seed)
                    for name in sorted(_DATASETS)]
    else:
        datasets = [_load_dataset(args)]
    result = run_full_suite(datasets, scale=args.scale, progress=print)
    Path(args.out).write_text(render_report(result))
    print(f"wrote {args.out}")
    return 0


def _command_ql(args: argparse.Namespace) -> int:
    from repro.queries.ql import execute

    dataset = _load_dataset(args)
    clean_started = time.perf_counter()
    _, _, graph = _cleaned_graph(dataset, args)
    clean_seconds = time.perf_counter() - clean_started
    target = graph if isinstance(graph, CTGraph) else \
        QuerySession(graph, backend=args.backend)
    query_started = time.perf_counter()
    for statement in args.statements:
        result = execute(target, statement)
        print(f"> {statement}")
        print(result.format())
        print()
    if args.stats:
        representation = ("nodes (CTGraph)" if isinstance(graph, CTGraph)
                          else "flat (QuerySession)")
        print(f"stats: engine={args.engine}, representation={representation}")
        print(f"timings: clean {clean_seconds:.4f} s, "
              f"queries {time.perf_counter() - query_started:.4f} s")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze

    if args.constraints_file:
        from repro.io.jsonio import load_building, load_constraints

        constraints = load_constraints(args.constraints_file)
        building = (load_building(args.building_file)
                    if args.building_file else None)
        report = analyze(constraints, map_model=building,
                         advise=args.advise)
    else:
        dataset = _load_dataset(args)
        kinds = _parse_kinds(args.constraints)
        constraints = infer_constraints(dataset.building, MotilityProfile(),
                                        kinds=kinds,
                                        distances=dataset.distances)
        readings = None
        if args.index is not None:
            trajectories = dataset.all_trajectories()
            if not 0 <= args.index < len(trajectories):
                raise SystemExit(
                    f"--index must be in [0, {len(trajectories)})")
            readings = trajectories[args.index].readings
        report = analyze(constraints, map_model=dataset.building,
                         prior=dataset.prior, readings=readings,
                         advise=args.advise)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main

    lint_args = list(args.paths)
    if args.list_rules:
        lint_args.append("--list-rules")
    if args.select:
        lint_args.extend(["--select", args.select])
    lint_args.extend(["--format", args.format])
    return lint_main(lint_args)


def _serve_lines(args: argparse.Namespace):
    """The input lines of `serve`: stdin, a file, or a followed file."""
    if args.input == "-":
        for line in sys.stdin:
            yield line
        return
    if not args.follow:
        with open(args.input, "r", encoding="utf-8") as handle:
            for line in handle:
                yield line
        return
    idle = 0.0
    poll = 0.2
    with open(args.input, "r", encoding="utf-8") as handle:
        while True:
            line = handle.readline()
            if line:
                # A line without its newline is still being appended;
                # wait for the writer to finish it.
                if not line.endswith("\n"):
                    handle.seek(handle.tell() - len(line))
                    time.sleep(poll)
                    continue
                idle = 0.0
                yield line
                continue
            if args.idle_timeout is not None and idle >= args.idle_timeout:
                return
            time.sleep(poll)
            idle += poll


def _command_serve(args: argparse.Namespace) -> int:
    from repro.errors import StoreFormatError

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.checkpoint_dir:
        from repro.store.format import ensure_shard_manifest

        try:
            ensure_shard_manifest(args.checkpoint_dir, args.shards)
        except StoreFormatError as error:
            raise SystemExit(f"serve: {error}")
    if args.shards == 1:
        return _serve_single(args)
    return _serve_sharded(args)


def _serve_single(args: argparse.Namespace) -> int:
    import json

    from repro.core.algorithm import CleaningOptions
    from repro.io.jsonio import load_constraints
    from repro.runtime.sessions import StreamSessionManager
    from repro.runtime.shards import ServeEngine

    constraints = load_constraints(args.constraints_file)
    manager = StreamSessionManager(
        constraints, window=args.window,
        options=CleaningOptions(backend=args.backend),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=(args.checkpoint_every
                          if args.checkpoint_dir else 0),
        resume=args.resume)
    # Readings already covered by a resumed checkpoint are *skipped* (in
    # the engine), so feeding the same input file again continues where
    # the kill struck.
    engine = ServeEngine(manager, estimate_every=args.estimate_every,
                         stats_every=args.stats_every)
    iterator = iter(_serve_lines(args))
    while True:
        if args.max_readings is not None and \
                engine.ingested >= args.max_readings:
            break
        raw = next(iterator, None)
        if raw is None:
            break
        line = raw.strip()
        if not line:
            continue
        try:
            reading = json.loads(line)
            object_id = reading["object"]
            candidates = reading["candidates"]
        except (ValueError, KeyError, TypeError):
            print(f"serve: skipping malformed line: {line[:120]}",
                  file=sys.stderr)
            continue
        _, out_lines, err_lines = engine.process(object_id, candidates)
        for out_line in out_lines:
            print(out_line, flush=True)
        for err_line in err_lines:
            print(err_line, file=sys.stderr)
    for _object_id, final_line in engine.final_entries():
        print(final_line, flush=True)
    if args.stats_every:
        print(engine.summary_line("fleet"), file=sys.stderr)
    if args.checkpoint_dir and not args.no_final_checkpoint:
        for object_id, path in engine.checkpoint_entries():
            print(f"serve: checkpointed {object_id!r} -> {path}",
                  file=sys.stderr)
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    from repro.runtime.shards import StreamShardPool

    pool = StreamShardPool(
        args.shards, constraints_file=args.constraints_file,
        window=args.window, checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=(args.checkpoint_every
                          if args.checkpoint_dir else 0),
        resume=args.resume, estimate_every=args.estimate_every,
        stats_every=args.stats_every, backend=args.backend)
    with pool:
        pool.serve(_serve_lines(args), sys.stdout, sys.stderr,
                   max_readings=args.max_readings)
        pool.finish(sys.stdout, sys.stderr,
                    final_checkpoint=not args.no_final_checkpoint)
    return 0


def _command_map(args: argparse.Namespace) -> int:
    from repro.viz import render_floor, render_marginal

    dataset = _load_dataset(args)
    if args.floor not in dataset.building.floors:
        raise SystemExit(
            f"--floor must be one of {list(dataset.building.floors)}")
    print(render_floor(dataset.building, args.floor,
                       readers=dataset.readers, scale=args.render_scale))
    if args.at is not None:
        trajectory, _, graph = _cleaned_graph(dataset, args)
        if not 0 <= args.at < graph.duration:
            raise SystemExit(f"--at must be in [0, {graph.duration})")
        truth = trajectory.truth.locations[args.at]
        print(f"\ncleaned position estimate at t={args.at} "
              f"(ground truth: {truth}):")
        print(render_marginal(dataset.building, args.floor,
                              graph.location_marginal(args.at),
                              scale=args.render_scale))
    return 0


_COMMANDS = {
    "info": _command_info,
    "clean": _command_clean,
    "clean-many": _command_clean_many,
    "store": _command_store,
    "query": _command_query,
    "experiment": _command_experiment,
    "analytics": _command_analytics,
    "export": _command_export,
    "report": _command_report,
    "ql": _command_ql,
    "analyze": _command_analyze,
    "lint": _command_lint,
    "serve": _command_serve,
    "map": _command_map,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """The console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into e.g. `head`: exit quietly, and point stdout at
        # devnull so the interpreter's final flush cannot raise again
        # (the pattern recommended by the Python docs).
        import os
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
