"""Sharded multi-process streaming: ``rfid-ctg serve --shards N``.

One :class:`~repro.runtime.sessions.StreamSessionManager` hosts a fleet
in a single process; this module partitions the fleet across worker
processes the way Cao et al.'s distributed RFID tracking partitions tags
across inference workers.  Two pieces:

* :class:`ServeEngine` — the per-reading serve logic (resume skipping,
  drop lines, live estimates, stats) factored out of the CLI so the
  single-process path and every shard worker run *the same code* on the
  same per-object reading subsequence.  Output lines are returned as
  fully rendered strings, which is what makes sharded output
  byte-identical to ``--shards 1`` by construction.

* :class:`StreamShardPool` — the parent side: objects are routed to
  workers by a stable hash of the object id (so a resumed fleet lands on
  the same shards), each worker owns its own session manager and a
  ``shard-NN`` checkpoint subdirectory, and every dispatched reading
  carries a global sequence number.  Replies are reorder-buffered and
  flushed in sequence order, so stdout comes out exactly as the
  single-process loop would have produced it.  Backpressure (a bounded
  in-flight window, further clamped to the remaining ``--max-readings``
  budget) keeps ``--max-readings`` semantics exact: a reading is only
  dispatched while the budget certainly allows processing it.

Kill -> resume works per shard: each worker resumes its own subdirectory
independently, and the ``shards.json`` manifest
(:func:`repro.store.format.ensure_shard_manifest`) refuses a resume
under a different shard count, which would silently find no checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import (
    InconsistentReadingsError,
    ReadingSequenceError,
)
from repro.runtime.sessions import StreamSessionManager

__all__ = ["ServeEngine", "StreamShardPool", "shard_of"]

#: Default per-pool bound on dispatched-but-unanswered readings.
DEFAULT_MAX_INFLIGHT = 256

_SENTINEL = object()


def shard_of(object_id: str, shards: int) -> int:
    """The worker index owning ``object_id`` — a stable content hash.

    ``hash()`` is randomized per process, so routing uses SHA-256: the
    same object lands on the same shard in every run, which is what lets
    a killed ``--shards N`` fleet resume with its checkpoints intact.
    """
    digest = hashlib.sha256(object_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ServeEngine:
    """The per-reading logic of ``rfid-ctg serve``, output as strings.

    Wraps one :class:`StreamSessionManager` and reproduces the serve
    loop's observable behaviour: readings already covered by a resumed
    checkpoint are skipped, inconsistent/malformed readings become
    ``dropped`` lines with the session intact, and every
    ``estimate_every``-th reading of an object emits a live estimate
    line.  With ``stats_every > 0`` it additionally emits per-object
    throughput/frontier/checkpoint-lag lines (stderr plane) and attaches
    a ``stats`` block to the final summaries.  stdout lines are rendered
    here (``json.dumps(..., sort_keys=True)``) so every caller — the
    single-process CLI loop and each shard worker — produces identical
    bytes for identical readings.
    """

    def __init__(self, manager: StreamSessionManager, *,
                 estimate_every: int = 0, stats_every: int = 0) -> None:
        self.manager = manager
        self.estimate_every = estimate_every
        self.stats_every = stats_every
        self.ingested = 0
        self._seen: Dict[str, int] = {}
        self._resumed_duration = {
            object_id: manager.session(object_id).duration
            for object_id in manager.objects()}
        self._started = time.perf_counter()
        self._object_counts: Dict[str, int] = {}
        self._object_started: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def process(self, object_id: str, candidates: Mapping[str, float],
                ) -> Tuple[bool, List[str], List[str]]:
        """Feed one reading; returns ``(ingested, stdout_lines,
        stderr_lines)``."""
        seen = self._seen.get(object_id, 0) + 1
        self._seen[object_id] = seen
        if seen <= self._resumed_duration.get(object_id, 0):
            return False, [], []
        try:
            estimate = self.manager.ingest(object_id, candidates)
        except (InconsistentReadingsError, ReadingSequenceError) as error:
            return False, [_render({
                "object": object_id, "t": seen - 1,
                "dropped": f"{type(error).__name__}: {error}"})], []
        self.ingested += 1
        out: List[str] = []
        err: List[str] = []
        cleaner = self.manager.session(object_id)
        if self.estimate_every and \
                cleaner.duration % self.estimate_every == 0:
            out.append(_render({"object": object_id,
                                "t": cleaner.duration - 1,
                                "estimate": estimate}))
        if self.stats_every:
            now = time.perf_counter()
            count = self._object_counts.get(object_id, 0) + 1
            self._object_counts[object_id] = count
            started = self._object_started.setdefault(object_id, now)
            if count % self.stats_every == 0:
                rate = _rate(count, now - started)
                err.append(
                    f"serve: stats object={object_id} "
                    f"t={cleaner.duration - 1} "
                    f"readings_per_s={_fmt_rate(rate)} "
                    f"frontier_states={cleaner.frontier_size()} "
                    f"checkpoint_lag="
                    f"{self.manager.checkpoint_lag(object_id)}")
        return True, out, err

    # ------------------------------------------------------------------
    def final_entries(self) -> List[Tuple[str, str]]:
        """The per-object final summary lines, as ``(object_id, line)``
        sorted by object id (a shard merge re-sorts the concatenation)."""
        entries: List[Tuple[str, str]] = []
        for object_id in sorted(self.manager.objects()):
            cleaner = self.manager.session(object_id)
            if cleaner.duration == 0:
                continue
            payload = {"object": object_id, "final": True,
                       "duration": cleaner.duration, "base": cleaner.base,
                       "frontier_states": cleaner.frontier_size(),
                       "estimate": cleaner.filtered_distribution()}
            if self.stats_every:
                count = self._object_counts.get(object_id, 0)
                elapsed = (time.perf_counter()
                           - self._object_started.get(object_id,
                                                      self._started))
                payload["stats"] = {
                    "ingested": count,
                    "readings_per_s": _rate(count, elapsed),
                    "checkpoint_lag":
                        self.manager.checkpoint_lag(object_id)}
            entries.append((object_id, _render(payload)))
        return entries

    def summary_line(self, label: str) -> str:
        """One fleet/shard throughput line for the stderr stats plane."""
        elapsed = time.perf_counter() - self._started
        rate = _rate(self.ingested, elapsed)
        return (f"serve: stats {label} objects={len(self.manager.objects())} "
                f"ingested={self.ingested} "
                f"readings_per_s={_fmt_rate(rate)}")

    def checkpoint_entries(self) -> List[Tuple[str, str]]:
        """Checkpoint every hosted object; ``(object_id, path)`` sorted."""
        return [(object_id, str(path)) for object_id, path
                in sorted(self.manager.checkpoint_all().items())]


def _render(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _rate(count: int, elapsed: float) -> Optional[float]:
    return count / elapsed if elapsed > 0.0 and count else None


def _fmt_rate(rate: Optional[float]) -> str:
    return "n/a" if rate is None else f"{rate:.1f}"


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _shard_worker_main(shard_index: int, inbox, outbox,
                       config: Dict) -> None:
    """One shard: own session manager, own checkpoints, serve loop body.

    Protocol (all tuples): receives ``("reading", seq, object_id,
    candidates)``, ``("finals",)``, ``("summary",)``, ``("checkpoint",)``
    and ``("stop",)``; answers with ``("ready", ...)`` once constructed,
    ``("result", shard, seq, ingested, out_lines, err_lines)`` per
    reading, the corresponding ``("finals"/"summary"/"checkpointed",
    shard, payload)`` replies, and ``("fatal", shard, traceback)`` on any
    unexpected error (the parent escalates it).
    """
    try:
        from repro.core.algorithm import CleaningOptions
        from repro.io.jsonio import load_constraints

        constraints = load_constraints(config["constraints_file"])
        manager = StreamSessionManager(
            constraints, window=config["window"],
            options=CleaningOptions(backend=config["backend"]),
            checkpoint_dir=config["checkpoint_dir"],
            checkpoint_every=config["checkpoint_every"],
            resume=config["resume"])
        engine = ServeEngine(manager,
                             estimate_every=config["estimate_every"],
                             stats_every=config["stats_every"])
        outbox.put(("ready", shard_index, len(manager.objects())))
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "reading":
                _, seq, object_id, candidates = message
                ingested, out_lines, err_lines = engine.process(
                    object_id, candidates)
                outbox.put(("result", shard_index, seq, ingested,
                            out_lines, err_lines))
            elif kind == "finals":
                outbox.put(("finals", shard_index,
                            engine.final_entries()))
            elif kind == "summary":
                outbox.put(("summary", shard_index,
                            engine.summary_line(
                                f"shard={shard_index}")))
            elif kind == "checkpoint":
                outbox.put(("checkpointed", shard_index,
                            engine.checkpoint_entries()))
            elif kind == "stop":
                return
    except BaseException:
        outbox.put(("fatal", shard_index, traceback.format_exc()))


class StreamShardPool:
    """Partition a serve fleet across worker processes, merge in order.

    Construct, :meth:`start`, then :meth:`serve` the reading lines and
    :meth:`finish`; use as a context manager to guarantee the workers
    are reaped.  See the module docstring for the ordering and
    ``--max-readings`` guarantees.
    """

    def __init__(self, shards: int, *, constraints_file: str,
                 window: int, checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 0, resume: bool = False,
                 estimate_every: int = 0, stats_every: int = 0,
                 backend: str = "python",
                 max_inflight: int = DEFAULT_MAX_INFLIGHT) -> None:
        if shards < 2:
            raise ReadingSequenceError(
                f"StreamShardPool needs at least 2 shards, got {shards} "
                "(run the single-process path instead)")
        self.shards = shards
        self.max_inflight = max_inflight
        self._config = {
            "constraints_file": constraints_file,
            "window": window,
            "checkpoint_every": checkpoint_every,
            "resume": resume,
            "estimate_every": estimate_every,
            "stats_every": stats_every,
            "backend": backend,
        }
        self._checkpoint_dir = checkpoint_dir
        self._stats_every = stats_every
        self._processes: List = []
        self._inboxes: List = []
        self._outbox = None
        self._context = None

    # ------------------------------------------------------------------
    def shard_checkpoint_dir(self, shard_index: int) -> Optional[str]:
        """Where shard ``shard_index`` keeps its checkpoints."""
        if self._checkpoint_dir is None:
            return None
        import os

        return os.path.join(self._checkpoint_dir,
                            f"shard-{shard_index:02d}")

    def start(self) -> None:
        """Spawn the workers and wait until every shard is ready.

        A shard that fails to construct (e.g. a resume under a foreign
        constraint set) surfaces here as the worker's own exception
        text, wrapped in :class:`~repro.errors.ReadingSequenceError`.
        """
        import multiprocessing

        self._context = multiprocessing.get_context("spawn")
        self._outbox = self._context.Queue()
        for index in range(self.shards):
            config = dict(self._config)
            config["checkpoint_dir"] = self.shard_checkpoint_dir(index)
            inbox = self._context.Queue()
            process = self._context.Process(
                target=_shard_worker_main,
                args=(index, inbox, self._outbox, config),
                daemon=True)
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)
        ready = 0
        while ready < self.shards:
            message = self._receive()
            if message[0] == "ready":
                ready += 1

    def __enter__(self) -> "StreamShardPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def serve(self, lines: Iterable[str], out, err, *,
              max_readings: Optional[int] = None) -> int:
        """Pump reading lines through the shards; returns readings
        ingested.

        ``out``/``err`` are write targets with a ``write`` method (the
        CLI passes ``sys.stdout``/``sys.stderr``).  stdout lines are
        flushed in global dispatch order, so the merged stream is
        byte-identical to the single-process loop over the same input.
        """
        pending: Dict[int, Tuple[List[str], List[str]]] = {}
        state = {"inflight": 0, "ingested": 0, "next_flush": 0}

        def handle(message) -> None:
            kind = message[0]
            if kind == "result":
                _, _, seq, ingested, out_lines, err_lines = message
                state["inflight"] -= 1
                state["ingested"] += bool(ingested)
                pending[seq] = (out_lines, err_lines)

        def flush() -> None:
            while state["next_flush"] in pending:
                out_lines, err_lines = pending.pop(state["next_flush"])
                for line in out_lines:
                    out.write(line + "\n")
                for line in err_lines:
                    err.write(line + "\n")
                state["next_flush"] += 1
            if hasattr(out, "flush"):
                out.flush()

        iterator = iter(lines)
        next_seq = 0
        stopped = False
        while not stopped:
            # Dispatch gate: wait until the in-flight window has room
            # AND the remaining --max-readings budget certainly covers
            # one more reading (every in-flight one might be ingested).
            while True:
                remaining = (None if max_readings is None
                             else max_readings - state["ingested"])
                if remaining is not None and remaining <= 0:
                    stopped = True
                    break
                if state["inflight"] < self.max_inflight and \
                        (remaining is None
                         or state["inflight"] < remaining):
                    break
                handle(self._receive())
                flush()
            if stopped:
                break
            raw = next(iterator, _SENTINEL)
            if raw is _SENTINEL:
                break
            line = raw.strip()
            if not line:
                continue
            try:
                reading = json.loads(line)
                object_id = reading["object"]
                candidates = reading["candidates"]
            except (ValueError, KeyError, TypeError):
                err.write(
                    f"serve: skipping malformed line: {line[:120]}\n")
                continue
            self._inboxes[shard_of(object_id, self.shards)].put(
                ("reading", next_seq, object_id, candidates))
            next_seq += 1
            state["inflight"] += 1
            while True:
                message = self._receive(block=False)
                if message is None:
                    break
                handle(message)
            flush()
        while state["inflight"]:
            handle(self._receive())
            flush()
        return state["ingested"]

    # ------------------------------------------------------------------
    def _broadcast(self, request: Tuple, reply_kind: str) -> List:
        for inbox in self._inboxes:
            inbox.put(request)
        replies: List = [None] * self.shards
        received = 0
        while received < self.shards:
            message = self._receive()
            if message[0] == reply_kind:
                replies[message[1]] = message[2]
                received += 1
        return replies

    def finish(self, out, err, *, final_checkpoint: bool = True) -> None:
        """Emit the merged end-of-stream lines.

        Final summaries (stdout) merge across shards sorted by object
        id — exactly the ``sorted(manager.objects())`` order of the
        single-process loop.  Then per-shard stats summaries (when
        enabled) and checkpoint confirmations, both on stderr.
        """
        finals: List[Tuple[str, str]] = []
        for entries in self._broadcast(("finals",), "finals"):
            finals.extend(entries)
        for _object_id, line in sorted(finals):
            out.write(line + "\n")
        if hasattr(out, "flush"):
            out.flush()
        if self._stats_every:
            for line in self._broadcast(("summary",), "summary"):
                err.write(line + "\n")
        if final_checkpoint and self._checkpoint_dir is not None:
            checkpointed: List[Tuple[str, str]] = []
            for entries in self._broadcast(("checkpoint",),
                                           "checkpointed"):
                checkpointed.extend(entries)
            for object_id, path in sorted(checkpointed):
                err.write(
                    f"serve: checkpointed {object_id!r} -> {path}\n")

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        for inbox in self._inboxes:
            try:
                inbox.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        self._inboxes = []

    # ------------------------------------------------------------------
    def _receive(self, block: bool = True):
        """One message from any worker; escalates worker death/fatals."""
        import queue as _queue

        while True:
            try:
                message = self._outbox.get(block=block, timeout=1.0)
            except _queue.Empty:
                if not block:
                    return None
                for index, process in enumerate(self._processes):
                    if not process.is_alive():
                        raise ReadingSequenceError(
                            f"shard worker {index} died unexpectedly "
                            f"(exit code {process.exitcode})")
                continue
            if message[0] == "fatal":
                raise ReadingSequenceError(
                    f"shard worker {message[1]} failed:\n{message[2]}")
            return message
