"""Multi-object streaming sessions: one process hosting many tags.

The batch runtime (:mod:`repro.runtime.batch`) fans *finished* reading
sequences across workers; this module is its long-lived counterpart: a
:class:`StreamSessionManager` holds one
:class:`~repro.streaming.StreamingCleaner` per monitored object, routes
incoming readings to them, and owns their durable checkpoints — one
``rfid-ctg/ckpt@1`` file per object in a shared directory, written
periodically and resumable after a crash.  ``rfid-ctg serve`` is a thin
CLI shell around this class.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Mapping, Tuple

from repro.core.algorithm import CleaningOptions
from repro.core.constraints import ConstraintSet
from repro.errors import ReadingSequenceError
from repro.streaming import StreamingCleaner
from repro.streaming.cleaner import DEFAULT_WINDOW

__all__ = ["StreamSessionManager"]


class StreamSessionManager:
    """Route a multiplexed reading stream to per-object streaming cleaners.

    Sessions are created lazily on the first reading of a new object id
    (all with the manager's window/options/prior) and live until the
    manager is dropped.  With a ``checkpoint_dir`` each session persists
    to its own file — named by a digest of the object id, with the id
    itself recorded in the checkpoint meta — either explicitly
    (:meth:`checkpoint`, :meth:`checkpoint_all`) or automatically every
    ``checkpoint_every`` ingested readings.  Constructing with
    ``resume=True`` scans the directory and restores every session found
    there, verifying each was checkpointed under the manager's own
    constraint set (a mismatch raises
    :class:`~repro.errors.ReadingSequenceError` — silently mixing
    constraint sets would poison every estimate that follows).
    """

    def __init__(self, constraints: ConstraintSet, *,
                 window: int = DEFAULT_WINDOW,
                 options: CleaningOptions = CleaningOptions(),
                 prior=None,
                 checkpoint_dir=None,
                 checkpoint_every: int = 0,
                 resume: bool = False) -> None:
        if checkpoint_every < 0:
            raise ReadingSequenceError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every and checkpoint_dir is None:
            raise ReadingSequenceError(
                "checkpoint_every needs checkpoint_dir= (somewhere to "
                "write the checkpoints)")
        self.constraints = constraints
        self.window = window
        self.options = options
        self.prior = prior
        self.checkpoint_every = checkpoint_every
        self._checkpoint_dir = (Path(checkpoint_dir)
                                if checkpoint_dir is not None else None)
        self._sessions: Dict[str, StreamingCleaner] = {}
        self._since_checkpoint: Dict[str, int] = {}
        # One FrontierKernel for the whole fleet (the way
        # SharedCleaningPlan shares DU rows): every session gets the same
        # transition-table cache, so a frontier signature compiled while
        # streaming one object serves every other object too.
        self._kernel = None
        if options.backend != "python":
            from repro.core.kernels import FrontierKernel, numpy_available

            if numpy_available():
                self._kernel = FrontierKernel(constraints)
        if resume:
            self._resume_all()

    # ------------------------------------------------------------------
    def _resume_all(self) -> None:
        from repro.store.format import read_stream_checkpoint

        if self._checkpoint_dir is None:
            raise ReadingSequenceError(
                "resume=True needs checkpoint_dir= (where the checkpoints "
                "live)")
        if not self._checkpoint_dir.is_dir():
            return
        for path in sorted(self._checkpoint_dir.glob("*.ckpt")):
            object_id = read_stream_checkpoint(path).meta.get("object")
            if not isinstance(object_id, str):
                raise ReadingSequenceError(
                    f"{path}: checkpoint carries no object id — it was "
                    "not written by a StreamSessionManager")
            cleaner = StreamingCleaner.resume(path, prior=self.prior,
                                              frontier_kernel=self._kernel)
            if cleaner.constraints != self.constraints:
                raise ReadingSequenceError(
                    f"{path}: object {object_id!r} was checkpointed under "
                    "a different constraint set than this manager's — "
                    "resuming it here would mix incompatible sessions")
            self._sessions[object_id] = cleaner

    # ------------------------------------------------------------------
    def objects(self) -> Tuple[str, ...]:
        """The hosted object ids, in first-seen (or resume-scan) order."""
        return tuple(self._sessions)

    @property
    def frontier_kernel(self):
        """The fleet-shared transition-table cache (``None`` when the
        python backend is selected or numpy is unavailable)."""
        return self._kernel

    def session(self, object_id: str) -> StreamingCleaner:
        """The object's cleaner, created on first use."""
        cleaner = self._sessions.get(object_id)
        if cleaner is None:
            cleaner = StreamingCleaner(self.constraints, window=self.window,
                                       options=self.options,
                                       prior=self.prior,
                                       frontier_kernel=self._kernel)
            self._sessions[object_id] = cleaner
        return cleaner

    # ------------------------------------------------------------------
    def ingest(self, object_id: str,
               candidates: Mapping[str, float]) -> Dict[str, float]:
        """Feed one reading to the object's session; return the live estimate.

        Exceptions propagate from
        :meth:`~repro.streaming.StreamingCleaner.extend` with the
        session state unchanged, so the caller may drop the offending
        reading and keep the object alive.
        """
        cleaner = self.session(object_id)
        cleaner.extend(candidates)
        self._after_ingest(object_id)
        return cleaner.filtered_distribution()

    def ingest_reading(self, object_id: str, readers) -> Dict[str, float]:
        """Like :meth:`ingest` with a raw reading (needs the prior)."""
        cleaner = self.session(object_id)
        cleaner.extend_reading(readers)
        self._after_ingest(object_id)
        return cleaner.filtered_distribution()

    def _after_ingest(self, object_id: str) -> None:
        count = self._since_checkpoint.get(object_id, 0) + 1
        if self.checkpoint_every and count >= self.checkpoint_every:
            self.checkpoint(object_id)
            count = 0
        self._since_checkpoint[object_id] = count

    def checkpoint_lag(self, object_id: str) -> int:
        """Readings ingested for the object since its last checkpoint.

        Counted even with automatic checkpointing off (``--stats-every``
        reports it as the data loss a crash right now would cost).
        """
        return self._since_checkpoint.get(object_id, 0)

    # ------------------------------------------------------------------
    def checkpoint_path(self, object_id: str) -> Path:
        """Where the object's checkpoint lives (digest-named, id in meta)."""
        if self._checkpoint_dir is None:
            raise ReadingSequenceError(
                "this manager has no checkpoint_dir")
        digest = hashlib.sha256(object_id.encode("utf-8")).hexdigest()[:24]
        return self._checkpoint_dir / f"{digest}.ckpt"

    def checkpoint(self, object_id: str) -> Path:
        """Checkpoint one object now; returns the file written."""
        cleaner = self._sessions.get(object_id)
        if cleaner is None:
            raise ReadingSequenceError(
                f"unknown object {object_id!r}")
        path = self.checkpoint_path(object_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        cleaner.checkpoint(path, extra_meta={"object": object_id})
        self._since_checkpoint[object_id] = 0
        return path

    def checkpoint_all(self) -> Dict[str, Path]:
        """Checkpoint every hosted object; returns id -> file."""
        return {object_id: self.checkpoint(object_id)
                for object_id in self._sessions}
