"""The multi-object cleaning runtime: ``clean_many`` / :class:`BatchCleaner`.

Algorithm 1 cleans one object; real deployments clean fleets.  Cleaning is
embarrassingly parallel across tags — objects share nothing but the
constraint set — so the batch runtime fans a collection of l-sequences (or
raw reading sequences plus a prior) across a ``ProcessPoolExecutor``:

>>> from repro.runtime import clean_many
>>> result = clean_many(lsequences, constraints, workers=4)   # doctest: +SKIP
>>> result[0].graph                                           # doctest: +SKIP

Guarantees, all pinned by tests:

* **determinism** — outcomes come back in input order, and every graph is
  path-for-path probability-identical to a sequential
  :func:`~repro.core.algorithm.build_ct_graph` run on the same object
  (workers only move where the arithmetic happens, never what it is);
* **failure isolation** — a :class:`~repro.errors.ReproError` raised for
  one object (typically :class:`~repro.errors.ZeroMassError`) becomes that
  object's :class:`BatchOutcome`; the rest of the batch is unaffected.
  Non-domain exceptions (genuine bugs) still propagate and abort;
* **shared precomputation** — each worker process keeps one
  :class:`~repro.runtime.plan.SharedCleaningPlan` per distinct constraint
  set: DU-reachability rows are cached across objects and the analyzer
  pre-check's static rules run once per plan instead of once per object;
* **debuggability** — ``workers=1`` runs the exact same code path in
  process (no executor, no pickling), so breakpoints and profilers work.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.algorithm import CleaningOptions, CleaningStats, build_ct_graph
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import ReadingSequenceError, ReproError
from repro.runtime.plan import SharedCleaningPlan

__all__ = ["BatchOutcome", "BatchResult", "BatchCleaner", "clean_many"]

#: What the batch accepts per object: an interpreted l-sequence, or raw
#: readings (interpreted in the worker through the cleaner's ``prior``).
SequenceLike = Union[LSequence, ReadingSequence]


@dataclass(frozen=True)
class BatchOutcome:
    """The result of cleaning one object of a batch.

    Exactly one of ``graph`` / ``error`` is set.  Failed outcomes carry the
    exception's class name and message rather than the exception object —
    stable under pickling and enough to triage (``rfid-ctg analyze``
    locates the contradiction).
    """

    index: int
    graph: Optional[CTGraph] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.graph is not None

    @property
    def stats(self) -> Optional[CleaningStats]:
        """The construction counters (``None`` for failed outcomes)."""
        return self.graph.stats if self.graph is not None else None


@dataclass(frozen=True)
class BatchResult:
    """All outcomes of one batch run, in input order."""

    outcomes: Tuple[BatchOutcome, ...]
    wall_seconds: float
    workers: int
    chunk_size: int

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[BatchOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> BatchOutcome:
        return self.outcomes[index]

    @property
    def graphs(self) -> Tuple[Optional[CTGraph], ...]:
        """Per-object graphs, ``None`` where cleaning failed."""
        return tuple(outcome.graph for outcome in self.outcomes)

    @property
    def failures(self) -> Tuple[BatchOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def cleaned(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def compute_seconds(self) -> float:
        """Summed per-object cleaning time (compare with ``wall_seconds``)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    def aggregate_stats(self) -> CleaningStats:
        """Summed :class:`CleaningStats` over the successful outcomes."""
        total = CleaningStats()
        for outcome in self.outcomes:
            stats = outcome.stats
            if stats is None:
                continue
            total.nodes_created += stats.nodes_created
            total.nodes_removed += stats.nodes_removed
            total.edges_created += stats.edges_created
            total.edges_removed += stats.edges_removed
            total.forward_seconds += stats.forward_seconds
            total.backward_seconds += stats.backward_seconds
        return total

    def __repr__(self) -> str:
        return (f"BatchResult(objects={len(self.outcomes)}, "
                f"cleaned={self.cleaned}, failed={len(self.failures)}, "
                f"workers={self.workers}, wall={self.wall_seconds:.3f}s)")


# ----------------------------------------------------------------------
# worker-process machinery (module level so it pickles by reference)
# ----------------------------------------------------------------------

#: One task: ``(input index, constraint-table key, sequence)``.
_Task = Tuple[int, int, SequenceLike]

#: Per-process state installed by the pool initializer: the plans (one per
#: distinct constraint set), the options, and the optional prior.
_worker_state: Optional[Tuple[Dict[int, SharedCleaningPlan],
                              CleaningOptions, Optional[object]]] = None


def _init_worker(table: Dict[int, ConstraintSet], options: CleaningOptions,
                 prior: Optional[object]) -> None:
    global _worker_state
    _worker_state = ({key: SharedCleaningPlan(constraints)
                      for key, constraints in table.items()}, options, prior)


def _clean_one(index: int, sequence: SequenceLike,
               plan: SharedCleaningPlan, options: CleaningOptions,
               prior: Optional[object]) -> BatchOutcome:
    started = time.perf_counter()
    try:
        if isinstance(sequence, ReadingSequence):
            lsequence = LSequence.from_readings(sequence, prior)
        else:
            lsequence = sequence
        graph = build_ct_graph(lsequence, plan.constraints, options,
                               plan=plan)
    except ReproError as error:
        return BatchOutcome(index=index, error_type=type(error).__name__,
                            error=str(error),
                            seconds=time.perf_counter() - started)
    return BatchOutcome(index=index, graph=graph,
                        seconds=time.perf_counter() - started)


def _worker_clean(task: _Task) -> BatchOutcome:
    if _worker_state is None:
        raise RuntimeError("worker initializer did not run")
    plans, options, prior = _worker_state
    index, key, sequence = task
    return _clean_one(index, sequence, plans[key], options, prior)


def _pool_context():
    """Prefer ``fork`` (fast, shares the warm interpreter); fall back to
    the platform default where fork is unavailable (e.g. Windows/macOS
    spawn) — the worker entry points are module-level, so both work."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the public runtime
# ----------------------------------------------------------------------
class BatchCleaner:
    """A configured multi-object cleaning runtime.

    ``constraints`` is one :class:`ConstraintSet` shared by every object,
    or a per-object sequence of constraint sets (precomputation is shared
    per *distinct* set either way).  ``workers`` is the process count —
    ``1`` (the default) cleans in process, ``None`` uses the machine's CPU
    count.  ``chunk_size`` is how many objects each worker claims at a
    time (default: batch size / (4 x workers), floored at 1 — small enough
    to balance load, big enough to amortise task pickling).  ``prior`` is
    required when raw :class:`ReadingSequence` objects are submitted; it
    is shipped to each worker once, and the readings -> l-sequence
    interpretation happens in the workers too.
    """

    def __init__(self, constraints: Union[ConstraintSet,
                                          Sequence[ConstraintSet]], *,
                 options: CleaningOptions = CleaningOptions(),
                 workers: Optional[int] = 1,
                 chunk_size: Optional[int] = None,
                 prior: Optional[object] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._constraints = constraints
        self.options = options
        self.workers = workers
        self.chunk_size = chunk_size
        self.prior = prior

    def _tasks(self, sequences: Sequence[SequenceLike]
               ) -> Tuple[List[_Task], Dict[int, ConstraintSet]]:
        """Pair every sequence with its constraint-table key.

        Distinct constraint sets are interned (``ConstraintSet.__eq__``
        compares the stated constraints), so ten objects under two sets
        yield a two-entry table and two shared plans per worker.
        """
        if isinstance(self._constraints, ConstraintSet):
            per_object: Sequence[ConstraintSet] = \
                [self._constraints] * len(sequences)
        else:
            per_object = list(self._constraints)
            if len(per_object) != len(sequences):
                raise ValueError(
                    f"{len(sequences)} sequences but {len(per_object)} "
                    "constraint sets; pass one set, or one per object")
        table: Dict[int, ConstraintSet] = {}
        keys: Dict[ConstraintSet, int] = {}
        tasks: List[_Task] = []
        for index, (sequence, constraints) in enumerate(
                zip(sequences, per_object)):
            if isinstance(sequence, ReadingSequence) and self.prior is None:
                raise ReadingSequenceError(
                    f"object {index} is a raw ReadingSequence but the "
                    "cleaner has no prior; pass prior=... to interpret it")
            key = keys.get(constraints)
            if key is None:
                key = len(table)
                keys[constraints] = key
                table[key] = constraints
            tasks.append((index, key, sequence))
        return tasks, table

    def clean(self, sequences: Sequence[SequenceLike]) -> BatchResult:
        """Clean every object; outcomes return in input order."""
        sequences = list(sequences)
        started = time.perf_counter()
        tasks, table = self._tasks(sequences)
        workers = min(self.workers, max(1, len(tasks)))
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(tasks) // (workers * 4))
        if workers == 1:
            plans = {key: SharedCleaningPlan(constraints)
                     for key, constraints in table.items()}
            outcomes = [_clean_one(index, sequence, plans[key],
                                   self.options, self.prior)
                        for index, key, sequence in tasks]
        else:
            with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context(),
                    initializer=_init_worker,
                    initargs=(table, self.options, self.prior)) as pool:
                outcomes = list(pool.map(_worker_clean, tasks,
                                         chunksize=chunk))
        return BatchResult(outcomes=tuple(outcomes),
                           wall_seconds=time.perf_counter() - started,
                           workers=workers, chunk_size=chunk)


def clean_many(sequences: Sequence[SequenceLike],
               constraints: Union[ConstraintSet, Sequence[ConstraintSet]], *,
               options: CleaningOptions = CleaningOptions(),
               workers: Optional[int] = 1,
               chunk_size: Optional[int] = None,
               prior: Optional[object] = None) -> BatchResult:
    """Clean a collection of objects, optionally across worker processes.

    The one-call form of :class:`BatchCleaner` — see its docstring for the
    parameter semantics and the module docstring for the guarantees.
    """
    cleaner = BatchCleaner(constraints, options=options, workers=workers,
                           chunk_size=chunk_size, prior=prior)
    return cleaner.clean(sequences)
