"""The multi-object cleaning runtime: ``clean_many`` / :class:`BatchCleaner`.

Algorithm 1 cleans one object; real deployments clean fleets.  Cleaning is
embarrassingly parallel across tags — objects share nothing but the
constraint set — so the batch runtime fans a collection of l-sequences (or
raw reading sequences plus a prior) across a ``ProcessPoolExecutor``:

>>> from repro.runtime import clean_many
>>> result = clean_many(lsequences, constraints, workers=4)   # doctest: +SKIP
>>> result[0].graph                                           # doctest: +SKIP

Guarantees, all pinned by tests:

* **determinism** — outcomes come back in input order, and every graph is
  path-for-path probability-identical to a sequential
  :func:`~repro.core.algorithm.build_ct_graph` run on the same object
  (workers only move where the arithmetic happens, never what it is);
* **failure isolation, per object — never per batch**:

  - a :class:`~repro.errors.ReproError` raised for one object (typically
    :class:`~repro.errors.ZeroMassError`) becomes that object's
    :class:`BatchOutcome`;
  - a *worker crash* (segfault, OOM kill, ``os._exit``) breaks the pool —
    the runtime respawns it, re-drives only the unfinished work, bisects
    the suspect tasks to isolate the object that keeps killing workers,
    and quarantines it as a ``WorkerCrashError`` outcome after
    ``max_retries`` re-attempts, its chunk-mates retried and unharmed;
  - with ``timeout_seconds`` set, an object whose worker misses the
    per-object wall-clock deadline is recorded as a
    ``CleaningTimeoutError`` outcome; the stuck worker is reclaimed and
    sibling objects are re-driven, not killed.

  Non-domain exceptions *raised inside a surviving worker* (genuine bugs)
  still propagate and abort;
* **shared precomputation** — each worker process keeps one
  :class:`~repro.runtime.plan.SharedCleaningPlan` per distinct constraint
  set: DU-reachability rows are cached across objects and the analyzer
  pre-check's static rules run once — in the parent, so pool respawns
  never repeat them;
* **debuggability** — ``workers=1`` runs the exact same code path in
  process (no executor, no pickling), so breakpoints and profilers work.
  Requesting ``timeout_seconds`` opts out of the in-process path (a
  deadline needs a supervisor outside the stuck process).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.algorithm import CleaningOptions, CleaningStats, build_ct_graph
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import (
    BatchConfigurationError,
    CleaningTimeoutError,
    ReadingSequenceError,
    ReproError,
    WorkerCrashError,
)
from repro.queries.ql import QueryResult, execute as _execute_statement
from repro.queries.session import QuerySession
from repro.runtime.plan import QueryPlan, SharedCleaningPlan
from repro.store.format import load_ctg
from repro.store.graphstore import GraphStore

__all__ = ["BatchOutcome", "BatchResult", "BatchCleaner", "clean_many"]

#: Either materialised form a batch outcome can carry.
GraphLike = Union[CTGraph, FlatCTGraph]

#: What the batch accepts per object: an interpreted l-sequence, or raw
#: readings (interpreted in the worker through the cleaner's ``prior``).
SequenceLike = Union[LSequence, ReadingSequence]


@dataclass(frozen=True)
class BatchOutcome:
    """The result of cleaning one object of a batch.

    Failed outcomes carry the exception's class name and message rather
    than the exception object — stable under pickling and enough to triage
    (``rfid-ctg analyze`` locates a contradiction; ``WorkerCrashError`` /
    ``CleaningTimeoutError`` name the runtime-level faults).  Successful
    outcomes carry the graph (node or flat form, per
    ``CleaningOptions.materialize``) — unless the batch ran with a
    :class:`~repro.runtime.plan.QueryPlan` that discards graphs, in which
    case ``queries`` holds the per-statement results and ``graph`` is
    ``None`` by design (``ok`` is therefore defined by the *absence of an
    error*, not by the presence of a graph).
    """

    index: int
    graph: Optional[GraphLike] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0
    #: Per-statement results of the batch's ``QueryPlan`` (``None`` when
    #: the batch ran without one, or for failed outcomes).
    queries: Optional[Tuple[QueryResult, ...]] = None
    #: Where this object's ``.ctg`` entry lives when the batch ran with a
    #: :class:`~repro.store.GraphStore` (``None`` otherwise).  Workers
    #: ship only this path back; the parent re-opens it as an mmap view.
    ctg_path: Optional[str] = None
    #: Whether the store already held the entry (no cleaning ran).
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.error_type is None

    @property
    def stats(self) -> Optional[CleaningStats]:
        """The construction counters (``None`` for failed outcomes)."""
        return self.graph.stats if self.graph is not None else None


@dataclass(frozen=True)
class BatchResult:
    """All outcomes of one batch run, in input order."""

    outcomes: Tuple[BatchOutcome, ...]
    wall_seconds: float
    workers: int
    chunk_size: int
    #: How many times the worker pool had to be rebuilt (crashes and
    #: timeout reclaims); 0 on a healthy run.
    respawns: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[BatchOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> BatchOutcome:
        return self.outcomes[index]

    @property
    def graphs(self) -> Tuple[Optional[GraphLike], ...]:
        """Per-object graphs, ``None`` where cleaning failed (or where a
        graph-discarding :class:`~repro.runtime.plan.QueryPlan` ran)."""
        return tuple(outcome.graph for outcome in self.outcomes)

    @property
    def failures(self) -> Tuple[BatchOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def cleaned(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def compute_seconds(self) -> float:
        """Summed per-object cleaning time (compare with ``wall_seconds``)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    def aggregate_stats(self) -> CleaningStats:
        """Summed :class:`CleaningStats` over the successful outcomes.

        Iterates ``dataclasses.fields`` so a counter added to
        :class:`CleaningStats` later is aggregated automatically instead of
        silently dropped (a test sums every field to pin this).
        """
        total = CleaningStats()
        for outcome in self.outcomes:
            stats = outcome.stats
            if stats is None:
                continue
            for field in dataclasses.fields(CleaningStats):
                setattr(total, field.name,
                        getattr(total, field.name) + getattr(stats, field.name))
        return total

    def __repr__(self) -> str:
        return (f"BatchResult(objects={len(self.outcomes)}, "
                f"cleaned={self.cleaned}, failed={len(self.failures)}, "
                f"workers={self.workers}, wall={self.wall_seconds:.3f}s)")


# ----------------------------------------------------------------------
# worker-process machinery (module level so it pickles by reference)
# ----------------------------------------------------------------------

#: One task: ``(input index, constraint-table key, sequence)``.
_Task = Tuple[int, int, SequenceLike]

#: Per-process state installed by the pool initializer: the plans (one per
#: distinct constraint set), the options, the optional prior, the
#: optional query plan, and the optional graph store.
_worker_state: Optional[Tuple[Dict[int, SharedCleaningPlan],
                              CleaningOptions, Optional[object],
                              Optional[QueryPlan], Optional[object]]] = None


def _init_worker(table: Dict[int, ConstraintSet], options: CleaningOptions,
                 prior: Optional[object], static_checked: bool,
                 query_plan: Optional[QueryPlan],
                 store: Optional[object] = None) -> None:
    global _worker_state
    _worker_state = ({key: SharedCleaningPlan(constraints,
                                              static_checked=static_checked)
                      for key, constraints in table.items()},
                     options, prior, query_plan, store)


def _clean_one_stored(index: int, lsequence: LSequence,
                      plan: SharedCleaningPlan, options: CleaningOptions,
                      query_plan: Optional[QueryPlan], store,
                      started: float) -> BatchOutcome:
    """Store-mode cleaning of one object: consult the cache, write a
    ``.ctg`` segment on a miss, ship only the *path* back to the parent.

    No graph ever crosses the process pipe: a miss is cleaned with
    ``materialize="store"`` (the engine writes its arrays straight into
    the entry's staging file, published atomically), queries run against
    the worker-local mmap view, and the outcome carries ``ctg_path`` for
    the parent to re-open.  A hit skips Algorithm 1 entirely.
    """
    key = store.key_for(lsequence, plan.constraints, options)
    path = store.path_for(key)
    cache_hit = path.exists()
    if not cache_hit:
        temp = store.temp_path_for(key)
        try:
            graph = build_ct_graph(
                lsequence, plan.constraints,
                dataclasses.replace(options, materialize="store",
                                    output=str(temp)),
                plan=plan)
            graph.close()
            store.commit(temp, key)
        except BaseException:
            if temp.exists():
                temp.unlink()
            raise
    queries: Optional[Tuple[QueryResult, ...]] = None
    if query_plan is not None:
        with store.load(key) as graph:
            session = QuerySession(graph)
            queries = tuple(_execute_statement(session, statement)
                            for statement in query_plan.statements)
    return BatchOutcome(index=index, queries=queries,
                        seconds=time.perf_counter() - started,
                        ctg_path=str(path), cache_hit=cache_hit)


def _clean_one(index: int, sequence: SequenceLike,
               plan: SharedCleaningPlan, options: CleaningOptions,
               prior: Optional[object],
               query_plan: Optional[QueryPlan] = None,
               store=None) -> BatchOutcome:
    started = time.perf_counter()
    try:
        if isinstance(sequence, ReadingSequence):
            lsequence = LSequence.from_readings(sequence, prior)
        else:
            lsequence = sequence
        if store is not None:
            return _clean_one_stored(index, lsequence, plan, options,
                                     query_plan, store, started)
        if (query_plan is not None and not query_plan.keep_graphs
                and options.materialize == "auto"):
            # Nobody will see the graph — only the query results travel
            # back — so "auto" resolves to the flat form: the compact
            # engine skips CTNode materialisation and the QuerySession
            # runs on the arrays directly.  An explicit materialize choice
            # is respected (results are identical either way).
            options = dataclasses.replace(options, materialize="flat")
        graph: Optional[GraphLike] = build_ct_graph(
            lsequence, plan.constraints, options, plan=plan)
        queries: Optional[Tuple[QueryResult, ...]] = None
        if query_plan is not None:
            session = QuerySession(graph)
            queries = tuple(_execute_statement(session, statement)
                            for statement in query_plan.statements)
            if not query_plan.keep_graphs:
                graph = None
    except ReproError as error:
        return BatchOutcome(index=index, error_type=type(error).__name__,
                            error=str(error),
                            seconds=time.perf_counter() - started)
    return BatchOutcome(index=index, graph=graph, queries=queries,
                        seconds=time.perf_counter() - started)


def _worker_clean_chunk(chunk: Sequence[_Task]) -> List[BatchOutcome]:
    if _worker_state is None:
        raise RuntimeError("worker initializer did not run")
    plans, options, prior, query_plan, store = _worker_state
    return [_clean_one(index, sequence, plans[key], options, prior,
                       query_plan, store)
            for index, key, sequence in chunk]


def _pool_context(start_method: Optional[str] = None):
    """Prefer ``fork`` (fast, shares the warm interpreter); fall back to
    the platform default where fork is unavailable (e.g. Windows/macOS
    spawn) — the worker entry points are module-level, so both work.  An
    explicit ``start_method`` overrides the preference."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the fault-tolerant pool supervisor
# ----------------------------------------------------------------------

@dataclass
class _Flight:
    """One chunk in flight: what was submitted, when, and how."""

    chunk: List[_Task]
    submitted: float
    deadline: Optional[float]
    #: Probe flights are submitted one at a time, so a pool breakage while
    #: one is out implicates exactly this chunk.
    probing: bool


class _PoolSupervisor:
    """Drives task chunks through a respawnable ``ProcessPoolExecutor``.

    The normal path submits chunks ``workers``-and-some deep and collects
    futures as they finish.  Two faults are survived:

    * **pool breakage** (a worker died): every unfinished chunk becomes a
      *suspect* and is re-driven through probe mode — one chunk in flight
      at a time, so a second breakage attributes the crash exactly.  A
      multi-object suspect that crashes is bisected; a single-object
      suspect that crashes counts an attempt against that object and is
      quarantined as ``WorkerCrashError`` once its attempts exceed
      ``max_retries`` (the outcome map doubles as the exclusion list — a
      quarantined object is never resubmitted, so a crash-looper cannot
      cycle the pool forever);
    * **deadline expiry** (``timeout_seconds``): the expired object is
      recorded as ``CleaningTimeoutError``, the pool is torn down (the
      only way to reclaim the stuck worker), and the innocent in-flight
      chunks are re-queued for the fresh pool.

    Re-driving a chunk repeats a pure computation, so survivors stay
    bit-identical to a sequential run no matter how many times their chunk
    was interrupted.
    """

    def __init__(self, *, table: Dict[int, ConstraintSet],
                 options: CleaningOptions, prior: Optional[object],
                 workers: int, timeout_seconds: Optional[float],
                 max_retries: int, context,
                 static_checked: bool,
                 query_plan: Optional[QueryPlan] = None,
                 store: Optional[object] = None) -> None:
        self.table = table
        self.options = options
        self.prior = prior
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.max_retries = max_retries
        self.context = context
        self.static_checked = static_checked
        self.query_plan = query_plan
        self.store = store
        self.respawns = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ------------------------------------------------
    def _spawn(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self.context,
                initializer=_init_worker,
                initargs=(self.table, self.options, self.prior,
                          self.static_checked, self.query_plan, self.store))

    def _discard(self, kill: bool) -> None:
        """Drop the current pool; ``kill`` terminates still-busy workers
        (required to reclaim a stuck one — a broken pool's are already
        dead)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if kill:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=2.0)

    def close(self) -> None:
        self._discard(kill=True)

    # -- submission ----------------------------------------------------
    def _submit(self, chunk: List[_Task],
                inflight: Dict[Future, _Flight], probing: bool) -> bool:
        """Submit one chunk; ``False`` when the pool broke under us (the
        chunk is untouched and the caller re-queues it as a suspect)."""
        self._spawn()
        now = time.monotonic()
        deadline = (None if self.timeout_seconds is None
                    else now + self.timeout_seconds)
        try:
            future = self._pool.submit(_worker_clean_chunk, chunk)
        except BrokenProcessPool:
            return False
        inflight[future] = _Flight(chunk=chunk, submitted=now,
                                   deadline=deadline, probing=probing)
        return True

    def _fill(self, queue: Deque[List[_Task]], probes: Deque[List[_Task]],
              inflight: Dict[Future, _Flight]) -> None:
        if probes:
            # Probe mode: exactly one outstanding future, and the normal
            # queue waits — attribution before throughput.
            if not inflight:
                chunk = probes.popleft()
                if not self._submit(chunk, inflight, probing=True):
                    probes.appendleft(chunk)
                    self._note_respawn(kill=False)
            return
        # With deadlines enforced, keep exactly ``workers`` in flight so a
        # task's clock starts ticking when its worker actually does.
        limit = (self.workers if self.timeout_seconds is not None
                 else self.workers * 2)
        while queue and len(inflight) < limit:
            chunk = queue.popleft()
            if not self._submit(chunk, inflight, probing=False):
                probes.appendleft(chunk)
                self._suspect_all(inflight, probes)
                self._note_respawn(kill=False)
                return

    def _note_respawn(self, kill: bool) -> None:
        self._discard(kill=kill)
        self.respawns += 1

    # -- fault handling ------------------------------------------------
    def _suspect_all(self, inflight: Dict[Future, _Flight],
                     probes: Deque[List[_Task]]) -> None:
        """Everything still in flight died with the pool; probe it all."""
        for flight in inflight.values():
            probes.append(flight.chunk)
        inflight.clear()

    def _on_crash(self, broken: List[_Flight],
                  inflight: Dict[Future, _Flight],
                  probes: Deque[List[_Task]],
                  attempts: Dict[int, int],
                  outcomes: Dict[int, BatchOutcome]) -> None:
        self._suspect_all(inflight, probes)
        for flight in broken:
            chunk = flight.chunk
            if not flight.probing:
                # Crash in the parallel phase: any in-flight chunk could be
                # at fault, so this one joins the probe queue unblamed.
                probes.append(chunk)
            elif len(chunk) > 1:
                # A probed multi-object chunk crashed: bisect so the
                # innocent chunk-mates are retried apart from the poison.
                mid = len(chunk) // 2
                probes.appendleft(chunk[mid:])
                probes.appendleft(chunk[:mid])
            else:
                # A probed singleton crashed: the culprit is known exactly.
                index = chunk[0][0]
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > self.max_retries:
                    elapsed = time.monotonic() - flight.submitted
                    error = WorkerCrashError(
                        f"object {index}: the worker process cleaning it "
                        f"died {attempts[index]} time(s) "
                        f"(max_retries={self.max_retries}); the object is "
                        "quarantined and the rest of the batch continues")
                    outcomes[index] = BatchOutcome(
                        index=index, error_type=type(error).__name__,
                        error=str(error), seconds=elapsed)
                else:
                    probes.appendleft(chunk)
        self._note_respawn(kill=False)

    def _expire(self, inflight: Dict[Future, _Flight],
                queue: Deque[List[_Task]], probes: Deque[List[_Task]],
                outcomes: Dict[int, BatchOutcome]) -> None:
        if self.timeout_seconds is None or not inflight:
            return
        now = time.monotonic()
        expired = [flight for future, flight in inflight.items()
                   if not future.done()
                   and flight.deadline is not None and now >= flight.deadline]
        if not expired:
            return
        for flight in expired:
            # Deadlines imply chunk_size 1, so an expired chunk is one
            # object (asserted where chunks are cut).
            for index, _key, _sequence in flight.chunk:
                error = CleaningTimeoutError(
                    f"object {index} exceeded the per-object wall-clock "
                    f"budget of {self.timeout_seconds:g}s and was abandoned"
                    " (its worker was reclaimed; sibling objects are "
                    "unaffected)")
                outcomes[index] = BatchOutcome(
                    index=index, error_type=type(error).__name__,
                    error=str(error), seconds=now - flight.submitted)
        expired_ids = {id(flight) for flight in expired}
        # Reclaiming the stuck worker costs the whole pool; salvage what
        # already finished and re-queue the innocent rest for the respawn.
        for future, flight in inflight.items():
            if id(flight) in expired_ids:
                continue
            if future.done():
                try:
                    for outcome in future.result():
                        outcomes[outcome.index] = outcome
                    continue
                except BrokenProcessPool:
                    pass
            (probes if flight.probing else queue).appendleft(flight.chunk)
        inflight.clear()
        self._note_respawn(kill=True)

    # -- the drive loop ------------------------------------------------
    def _tick(self, inflight: Dict[Future, _Flight]) -> Optional[float]:
        deadlines = [flight.deadline for flight in inflight.values()
                     if flight.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def run(self, chunks: Sequence[List[_Task]]) -> Dict[int, BatchOutcome]:
        outcomes: Dict[int, BatchOutcome] = {}
        queue: Deque[List[_Task]] = deque(chunks)
        probes: Deque[List[_Task]] = deque()
        inflight: Dict[Future, _Flight] = {}
        attempts: Dict[int, int] = {}
        while queue or probes or inflight:
            self._fill(queue, probes, inflight)
            if not inflight:
                continue
            done, _ = wait(set(inflight), timeout=self._tick(inflight),
                           return_when=FIRST_COMPLETED)
            broken: List[_Flight] = []
            for future in done:
                flight = inflight.pop(future)
                try:
                    for outcome in future.result():
                        outcomes[outcome.index] = outcome
                except BrokenProcessPool:
                    broken.append(flight)
            if broken:
                self._on_crash(broken, inflight, probes, attempts, outcomes)
                continue
            self._expire(inflight, queue, probes, outcomes)
        return outcomes


# ----------------------------------------------------------------------
# the public runtime
# ----------------------------------------------------------------------
class BatchCleaner:
    """A configured multi-object cleaning runtime.

    ``constraints`` is one :class:`ConstraintSet` shared by every object,
    or a per-object sequence of constraint sets (precomputation is shared
    per *distinct* set either way).  ``workers`` is the process count —
    ``1`` (the default) cleans in process, ``None`` uses the machine's CPU
    count.  ``chunk_size`` is how many objects each worker claims at a
    time (default: batch size / (4 x workers), floored at 1 — small enough
    to balance load, big enough to amortise task pickling).  ``prior`` is
    required when raw :class:`ReadingSequence` objects are submitted; it
    is shipped to each worker once, and the readings -> l-sequence
    interpretation happens in the workers too.

    Fault tolerance (see ``docs/runtime.md`` for the full semantics):
    ``timeout_seconds`` is an optional per-object wall-clock budget,
    enforced by the parent via future deadlines (setting it forces
    ``chunk_size`` to 1 and the pool path, even for ``workers=1``);
    ``max_retries`` caps how often an object whose worker *crashed* is
    re-attempted before it is quarantined as a ``WorkerCrashError``
    outcome; ``start_method`` pins the multiprocessing start method
    (default: prefer ``fork``, else the platform default).
    """

    def __init__(self, constraints: Union[ConstraintSet,
                                          Sequence[ConstraintSet]], *,
                 options: CleaningOptions = CleaningOptions(),
                 workers: Optional[int] = 1,
                 chunk_size: Optional[int] = None,
                 prior: Optional[object] = None,
                 timeout_seconds: Optional[float] = None,
                 max_retries: int = 1,
                 start_method: Optional[str] = None,
                 query_plan: Optional[QueryPlan] = None,
                 store: Optional[GraphStore] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise BatchConfigurationError(
                f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise BatchConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if timeout_seconds is not None and not timeout_seconds > 0:
            raise BatchConfigurationError(
                f"timeout_seconds must be > 0, got {timeout_seconds}")
        if max_retries < 0:
            raise BatchConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        if (start_method is not None
                and start_method not in multiprocessing.get_all_start_methods()):
            raise BatchConfigurationError(
                f"start method {start_method!r} unavailable here; choose "
                f"from {multiprocessing.get_all_start_methods()}")
        if query_plan is not None and not isinstance(query_plan, QueryPlan):
            raise BatchConfigurationError(
                f"query_plan must be a QueryPlan, got "
                f"{type(query_plan).__name__}")
        if store is not None:
            if not isinstance(store, GraphStore):
                raise BatchConfigurationError(
                    f"store must be a GraphStore, got "
                    f"{type(store).__name__}")
            if options.materialize == "nodes":
                raise BatchConfigurationError(
                    "store= persists flat .ctg entries; "
                    'materialize="nodes" cannot be combined with it')
            if options.output is not None:
                raise BatchConfigurationError(
                    "store= chooses each object's .ctg path by content "
                    "key; it cannot be combined with options.output")
        self._constraints = constraints
        self.store = store
        self.query_plan = query_plan
        self.options = options
        self.workers = workers
        self.chunk_size = chunk_size
        self.prior = prior
        self.timeout_seconds = timeout_seconds
        self.max_retries = max_retries
        self.start_method = start_method

    def _tasks(self, sequences: Sequence[SequenceLike]
               ) -> Tuple[List[_Task], Dict[int, ConstraintSet]]:
        """Pair every sequence with its constraint-table key.

        Distinct constraint sets are interned (``ConstraintSet.__eq__``
        compares the stated constraints), so ten objects under two sets
        yield a two-entry table and two shared plans per worker.
        """
        if isinstance(self._constraints, ConstraintSet):
            per_object: Sequence[ConstraintSet] = \
                [self._constraints] * len(sequences)
        else:
            per_object = list(self._constraints)
            if len(per_object) != len(sequences):
                raise BatchConfigurationError(
                    f"{len(sequences)} sequences but {len(per_object)} "
                    "constraint sets; pass one set, or one per object")
        table: Dict[int, ConstraintSet] = {}
        keys: Dict[ConstraintSet, int] = {}
        tasks: List[_Task] = []
        for index, (sequence, constraints) in enumerate(
                zip(sequences, per_object)):
            if isinstance(sequence, ReadingSequence) and self.prior is None:
                raise ReadingSequenceError(
                    f"object {index} is a raw ReadingSequence but the "
                    "cleaner has no prior; pass prior=... to interpret it")
            key = keys.get(constraints)
            if key is None:
                key = len(table)
                keys[constraints] = key
                table[key] = constraints
            tasks.append((index, key, sequence))
        return tasks, table

    def clean(self, sequences: Sequence[SequenceLike]) -> BatchResult:
        """Clean every object; outcomes return in input order."""
        sequences = list(sequences)
        started = time.perf_counter()
        tasks, table = self._tasks(sequences)
        workers = min(self.workers, max(1, len(tasks)))
        if self.timeout_seconds is not None:
            # Per-object deadlines need per-object tasks (and a process to
            # supervise, so the pool path runs even for workers=1).
            chunk = 1
        else:
            chunk = self.chunk_size
            if chunk is None:
                chunk = max(1, len(tasks) // (workers * 4))
        respawns = 0
        if workers == 1 and self.timeout_seconds is None:
            plans = {key: SharedCleaningPlan(constraints)
                     for key, constraints in table.items()}
            outcomes = [_clean_one(index, sequence, plans[key],
                                   self.options, self.prior,
                                   self.query_plan, self.store)
                        for index, key, sequence in tasks]
        else:
            static_checked = False
            if self.options.precheck != "off":
                # Run the constraints-only analysis once, here in the
                # parent: its warnings surface exactly once per distinct
                # set, and respawned pools never repeat the work.
                for constraints in table.values():
                    SharedCleaningPlan(constraints).ensure_static_checked()
                static_checked = True
            chunks = [list(tasks[at:at + chunk])
                      for at in range(0, len(tasks), chunk)]
            supervisor = _PoolSupervisor(
                table=table, options=self.options, prior=self.prior,
                workers=workers, timeout_seconds=self.timeout_seconds,
                max_retries=self.max_retries,
                context=_pool_context(self.start_method),
                static_checked=static_checked,
                query_plan=self.query_plan, store=self.store)
            try:
                by_index = supervisor.run(chunks)
            finally:
                supervisor.close()
            respawns = supervisor.respawns
            if len(by_index) != len(tasks):   # pragma: no cover - invariant
                missing = sorted(set(range(len(tasks))) - set(by_index))
                raise RuntimeError(
                    f"batch supervisor lost outcomes for objects {missing}")
            outcomes = [by_index[index] for index in range(len(tasks))]
        if self.store is not None:
            # The workers consulted the store's directory, not this
            # instance; fold their per-outcome verdicts into its counters.
            for outcome in outcomes:
                if outcome.ok and outcome.ctg_path is not None:
                    if outcome.cache_hit:
                        self.store.hits += 1
                    else:
                        self.store.misses += 1
        if self.store is not None and (self.query_plan is None
                                       or self.query_plan.keep_graphs):
            # Workers shipped paths, not graphs: re-open every entry as a
            # zero-copy mmap view in the parent.
            outcomes = [
                dataclasses.replace(
                    outcome,
                    graph=load_ctg(outcome.ctg_path, mmap=self.store.mmap))
                if outcome.ok and outcome.ctg_path is not None else outcome
                for outcome in outcomes]
        return BatchResult(outcomes=tuple(outcomes),
                           wall_seconds=time.perf_counter() - started,
                           workers=workers, chunk_size=chunk,
                           respawns=respawns)


def clean_many(sequences: Sequence[SequenceLike],
               constraints: Union[ConstraintSet, Sequence[ConstraintSet]], *,
               options: CleaningOptions = CleaningOptions(),
               workers: Optional[int] = 1,
               chunk_size: Optional[int] = None,
               prior: Optional[object] = None,
               timeout_seconds: Optional[float] = None,
               max_retries: int = 1,
               start_method: Optional[str] = None,
               query_plan: Optional[QueryPlan] = None,
               store: Optional[GraphStore] = None) -> BatchResult:
    """Clean a collection of objects, optionally across worker processes.

    The one-call form of :class:`BatchCleaner` — see its docstring for the
    parameter semantics and the module docstring for the guarantees.
    ``query_plan`` runs :mod:`repro.queries.ql` statements against every
    graph inside the workers (see :class:`~repro.runtime.plan.QueryPlan`) —
    the way to get marginals or MAP paths out of a big batch without
    shipping every graph back through pickling.  ``store`` routes every
    outcome through a :class:`~repro.store.GraphStore`: workers write
    ``.ctg`` entries (cache hits skip cleaning entirely) and return only
    paths over the pipe; the parent re-opens each entry as an mmap-backed
    view, so no graph is ever pickled.  ``outcome.cache_hit`` and
    ``outcome.ctg_path`` record the store interaction.
    """
    cleaner = BatchCleaner(constraints, options=options, workers=workers,
                           chunk_size=chunk_size, prior=prior,
                           timeout_seconds=timeout_seconds,
                           max_retries=max_retries, start_method=start_method,
                           query_plan=query_plan, store=store)
    return cleaner.clean(sequences)
