"""The multi-object cleaning runtime.

One object is Algorithm 1's business (:mod:`repro.core.algorithm`); a
fleet of objects is this package's: :func:`clean_many` /
:class:`BatchCleaner` fan a collection of reading/l-sequences across
worker processes with per-constraint-set precomputation
(:class:`SharedCleaningPlan`), per-object failure isolation and
deterministic, input-ordered results.  For *live* fleets,
:class:`StreamSessionManager` hosts one bounded-memory
:class:`~repro.streaming.StreamingCleaner` per tag with shared
per-object checkpointing (the engine behind ``rfid-ctg serve``).
See ``docs/runtime.md``.
"""

from repro.runtime.batch import (
    BatchCleaner,
    BatchOutcome,
    BatchResult,
    clean_many,
)
from repro.runtime.plan import QueryPlan, SharedCleaningPlan
from repro.runtime.sessions import StreamSessionManager

__all__ = [
    "BatchCleaner",
    "BatchOutcome",
    "BatchResult",
    "QueryPlan",
    "SharedCleaningPlan",
    "StreamSessionManager",
    "clean_many",
]
