"""The multi-object cleaning runtime.

One object is Algorithm 1's business (:mod:`repro.core.algorithm`); a
fleet of objects is this package's: :func:`clean_many` /
:class:`BatchCleaner` fan a collection of reading/l-sequences across
worker processes with per-constraint-set precomputation
(:class:`SharedCleaningPlan`), per-object failure isolation and
deterministic, input-ordered results.  For *live* fleets,
:class:`StreamSessionManager` hosts one bounded-memory
:class:`~repro.streaming.StreamingCleaner` per tag with shared
per-object checkpointing (the engine behind ``rfid-ctg serve``), and
:class:`StreamShardPool` partitions that fleet across worker processes
by object-id hash with ordered output merging (``serve --shards N``).
See ``docs/runtime.md``.
"""

from repro.runtime.batch import (
    BatchCleaner,
    BatchOutcome,
    BatchResult,
    clean_many,
)
from repro.runtime.plan import QueryPlan, SharedCleaningPlan
from repro.runtime.sessions import StreamSessionManager
from repro.runtime.shards import ServeEngine, StreamShardPool, shard_of

__all__ = [
    "BatchCleaner",
    "BatchOutcome",
    "BatchResult",
    "QueryPlan",
    "ServeEngine",
    "SharedCleaningPlan",
    "StreamSessionManager",
    "StreamShardPool",
    "clean_many",
    "shard_of",
]
