"""Per-constraint-set precomputation shared across the objects of a batch.

Algorithm 1 does two kinds of work that depend only on the constraint set
(and the location support of a timestep), not on the individual object:

* the rule-2 (DU) filtering of a level's candidate locations — the same
  ``(source location, support)`` row is recomputed for every level with
  that support, of every object;
* the static part of the analyzer pre-check (rules C001-C004 of
  :mod:`repro.analysis`), which inspects the constraints alone.

:class:`SharedCleaningPlan` hoists both.  One plan serves every object
cleaned under the same :class:`~repro.core.constraints.ConstraintSet`:
``build_ct_graph(..., plan=plan)`` consults the plan's DU-row cache and
lets the plan decide what the ``precheck`` option still has to do per
object.  A plan never changes results — only where the bookkeeping lives —
and is cheap to construct, so ``workers=1`` batches and per-process worker
state both just build one per constraint set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Sequence, Tuple, Union

from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence
from repro.errors import BatchConfigurationError, ZeroMassError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.advisor import EngineAdvice

__all__ = ["QueryPlan", "SharedCleaningPlan"]

#: Statement keywords the batch query plan accepts (the ``repro.queries.ql``
#: language).  Checked at plan construction so a typo fails in the parent,
#: not object-by-object inside the workers.
_QL_KEYWORDS = frozenset({
    "STAY", "MATCH", "VISIT", "SPAN", "DWELL", "FIRST",
    "EXPECTED", "BEST", "TOP", "ENTROPY",
})


@dataclass(frozen=True)
class QueryPlan:
    """Queries to run against every graph of a batch, inside the workers.

    ``statements`` are :mod:`repro.queries.ql` statements (one string or a
    sequence); each cleaned object's :class:`~repro.runtime.batch
    .BatchOutcome` then carries the per-statement
    :class:`~repro.queries.ql.QueryResult` tuple in ``outcome.queries``.
    Results are computed through one shared
    :class:`~repro.queries.session.QuerySession` per object, so the batch
    pays one forward sweep per object however many statements ride along.

    With ``keep_graphs=False`` (the default) the graphs themselves are
    dropped after querying — only the query payloads travel back to the
    parent, which is the point: marginals and MAP paths are a few hundred
    bytes where a pickled graph is megabytes.  Dropping the graph also
    lets ``materialize="auto"`` cleanings run flat end to end (no
    ``CTNode`` is ever built).  Set ``keep_graphs=True`` to get both the
    graphs and the query results.

    A malformed statement (bad keyword) raises
    :class:`~repro.errors.BatchConfigurationError` here; argument errors
    (say an out-of-range ``STAY`` timestep) surface per object as failed
    outcomes, exactly like a :class:`~repro.errors.ZeroMassError` would.
    """

    statements: Union[str, Sequence[str], Tuple[str, ...]]
    keep_graphs: bool = False

    def __post_init__(self) -> None:
        statements = self.statements
        if isinstance(statements, str):
            statements = (statements,)
        normalized = tuple(statements)
        if not normalized:
            raise BatchConfigurationError(
                "a QueryPlan needs at least one statement")
        for statement in normalized:
            if not isinstance(statement, str) or not statement.strip():
                raise BatchConfigurationError(
                    f"query statements must be non-empty strings, "
                    f"got {statement!r}")
            keyword = statement.strip().split(None, 1)[0].upper()
            if keyword not in _QL_KEYWORDS:
                raise BatchConfigurationError(
                    f"unknown query statement keyword {keyword!r}; "
                    f"choose from {sorted(_QL_KEYWORDS)}")
        object.__setattr__(self, "statements", normalized)

    def __repr__(self) -> str:
        return (f"QueryPlan({list(self.statements)!r}, "
                f"keep_graphs={self.keep_graphs})")


class SharedCleaningPlan:
    """Reusable cleaning state for one constraint set.

    Not thread-safe by design (the caches are plain dicts); the batch
    runtime gives every worker process its own plan.
    """

    def __init__(self, constraints: ConstraintSet, *,
                 static_checked: bool = False) -> None:
        self.constraints = constraints
        self._du_rows: Dict[Tuple[str, Tuple[str, ...]],
                            FrozenSet[str]] = {}
        self._engine_cache = None
        # Engine-routing advice per support signature (see advice_for).
        self._advice: Dict[Tuple[bool, Tuple[Tuple[str, ...], ...]],
                           "EngineAdvice"] = {}
        # ``static_checked=True`` records that the constraints-only
        # analysis already ran elsewhere (the batch parent runs it once
        # before spawning workers, so respawned pools never repeat it and
        # its warnings surface exactly once, in the parent).
        self._static_checked = static_checked

    # ------------------------------------------------------------------
    # DU-reachability rows
    # ------------------------------------------------------------------
    def du_row(self, location: str,
               support: Tuple[str, ...]) -> FrozenSet[str]:
        """The subset of ``support`` directly reachable from ``location``.

        Cached per ``(location, support)``: reader patterns repeat heavily
        both along one l-sequence and across the objects of a batch, so
        after warm-up the forward pass pays one dict lookup instead of a
        ``forbids_step`` scan per level.  Callers pass the support in
        *canonical (sorted) order* — equal location sets listed in
        different orders by different levels or objects then share one
        row — and filter their own candidate order through the returned
        set, which keeps edge insertion order (and with it the float
        arithmetic) identical to the plan-less path.
        """
        key = (location, support)
        row = self._du_rows.get(key)
        if row is None:
            forbids = self.constraints.forbids_step
            row = frozenset(destination for destination in support
                            if not forbids(location, destination))
            self._du_rows[key] = row
        return row

    # ------------------------------------------------------------------
    # the compact engine's transition cache
    # ------------------------------------------------------------------
    def engine_cache(self):
        """The plan's :class:`repro.core.engine.EngineCache`, built lazily.

        Transition rows depend on the constraint set only (the departure
        filter's time-dependence is folded into the row keys), so one
        cache legitimately serves every object cleaned under this plan —
        ``clean_many`` workers warm it once per constraint set.
        """
        if self._engine_cache is None:
            from repro.core.engine import EngineCache

            self._engine_cache = EngineCache(self.constraints)
        return self._engine_cache

    # ------------------------------------------------------------------
    # static engine-routing advice
    # ------------------------------------------------------------------
    def advice_for(self, lsequence: LSequence, options) -> "EngineAdvice":
        """Routing advice for one object, cached per support signature.

        The constraint envelope — and with it the advisor's verdict —
        depends only on the truncation policy and the per-level location
        supports, never on the probabilities, so periodic batch workloads
        (reader cycles, repeated schedules) hit one cached verdict for
        thousands of objects.  Advice never changes results (the engines
        are bit-exact); it only picks the cheaper builder.
        """
        strict = bool(getattr(options, "strict_truncation", False))
        key = (strict,
               tuple(tuple(sorted(lsequence.support(tau)))
                     for tau in range(lsequence.duration)))
        advice = self._advice.get(key)
        if advice is None:
            from repro.analysis.advisor import advise

            advice = advise(lsequence, self.constraints,
                            strict_truncation=strict)
            self._advice[key] = advice
        return advice

    @property
    def cached_rows(self) -> int:
        """How many DU rows the plan has accumulated (observability)."""
        return len(self._du_rows)

    @property
    def cached_advice(self) -> int:
        """How many routing verdicts the plan has cached (observability)."""
        return len(self._advice)

    # ------------------------------------------------------------------
    # run-once analyzer pre-check
    # ------------------------------------------------------------------
    def ensure_static_checked(self) -> None:
        """Run the constraints-only analysis (rules C001-C004) exactly once.

        ERROR diagnostics surface as warnings, like the sequential path's
        pre-check.  Idempotent — later calls (and plans constructed with
        ``static_checked=True``) are no-ops, which is what lets the batch
        runtime respawn crashed worker pools without re-analyzing or
        re-warning.
        """
        if self._static_checked:
            return
        import warnings

        from repro.analysis import analyze

        report = analyze(self.constraints)
        for diagnostic in report.errors:
            warnings.warn(
                f"pre-check {diagnostic.code}: {diagnostic.message}",
                stacklevel=3)
        self._static_checked = True

    def precheck(self, lsequence: LSequence, options) -> None:
        """The batch variant of ``CleaningOptions.precheck``.

        The constraints-only analysis (rules C001-C004) runs once per plan
        — not once per object — and surfaces its ERROR diagnostics as
        warnings exactly like the sequential path.  Per object, only the
        cheap boolean zero-mass forward pass (the rule C005 core) runs,
        and only in ``"error"`` mode, where it raises
        :class:`~repro.errors.ZeroMassError` up front.  This is the one
        deliberate semantic difference from per-object cleaning: the
        readings-dependent *warnings* (C005/C006 in ``"warn"`` mode) are
        skipped, because emitting them would cost a full analyzer run per
        object — the very work the plan exists to share.
        """
        if options.precheck == "off":
            return
        self.ensure_static_checked()
        if options.precheck == "error":
            from repro.analysis import predict_zero_mass

            if predict_zero_mass(
                    lsequence, self.constraints,
                    strict_truncation=options.strict_truncation):
                raise ZeroMassError(
                    "pre-check C005: no interpretation of the readings "
                    "satisfies the constraints")

    def __repr__(self) -> str:
        return (f"SharedCleaningPlan({self.constraints!r}, "
                f"cached_rows={self.cached_rows})")
