"""Deliberately faulty batch objects, for exercising the runtime's armour.

The fault-tolerant executor of :mod:`repro.runtime.batch` exists for two
failure shapes no ``try``/``except`` inside a worker can catch:

* a worker process that *dies* mid-task (segfault in a native dependency,
  the kernel's OOM killer, a stray ``os._exit``) — :class:`CrashingSequence`
  reproduces this exactly, because ``os._exit`` bypasses all exception
  handling and interpreter shutdown just like a signal would;
* a worker that never comes back (an object whose ct-graph expansion blows
  up past the C006 bound) — :class:`SlowSequence` stands in for it with a
  plain ``time.sleep`` ahead of an otherwise ordinary object.

Both classes live here — in an importable module rather than a test file —
so their instances unpickle inside ``spawn``-started workers too, and so
``benchmarks/bench_parallel.py --inject-crash/--inject-timeout`` and the
fault-injection tests share one definition.  They are duck-typed
l-sequences (``duration`` / ``candidates`` / ``support`` /
``probability``), the same surface :func:`repro.core.algorithm.build_ct_graph`
consumes.

Never feed a :class:`CrashingSequence` to an in-process run
(``workers=1``): the whole point is that it kills whichever process touches
it, and in-process that is *your* process.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.lsequence import LSequence

__all__ = ["CrashingSequence", "SlowSequence"]


class CrashingSequence:
    """A batch object that kills its worker process on first touch.

    ``exit_code`` is the status the worker dies with (any non-zero value
    makes ``ProcessPoolExecutor`` declare the pool broken).  Stateless but
    for that int, so it pickles to fork and spawn workers alike.
    """

    def __init__(self, duration: int = 2, exit_code: int = 87) -> None:
        self.duration = duration
        self.exit_code = exit_code

    def _die(self) -> None:
        # os._exit, not sys.exit: no SystemExit to catch, no atexit, no
        # stack unwinding — indistinguishable from an OOM kill as far as
        # the parent's pool is concerned.
        os._exit(self.exit_code)

    def candidates(self, tau: int) -> Dict[str, float]:
        self._die()
        raise AssertionError("unreachable")

    def support(self, tau: int) -> Tuple[str, ...]:
        self._die()
        raise AssertionError("unreachable")

    def probability(self, tau: int, location: str) -> float:
        self._die()
        raise AssertionError("unreachable")

    def __repr__(self) -> str:
        return (f"CrashingSequence(duration={self.duration}, "
                f"exit_code={self.exit_code})")


class SlowSequence(LSequence):
    """A normal l-sequence that stalls for ``seconds`` before cooperating.

    The sleep happens once, on the first ``candidates``/``support`` access
    *inside the worker*, which models an object whose forward expansion is
    pathologically expensive: the parent's per-object deadline fires while
    the worker sits in the task.  With a ``seconds`` below the deadline the
    object cleans normally and bit-identically to the plain
    :class:`LSequence` over the same rows.
    """

    def __init__(self, rows: Sequence[Mapping[str, float]],
                 seconds: float) -> None:
        super().__init__(rows)
        self.seconds = float(seconds)
        self._slept = False

    def candidates(self, tau: int) -> Dict[str, float]:
        if not self._slept:
            self._slept = True
            time.sleep(self.seconds)
        return super().candidates(tau)

    def __repr__(self) -> str:
        return (f"SlowSequence(duration={self.duration}, "
                f"seconds={self.seconds})")
