"""The RFID substrate: readers, detection physics, calibration and priors.

This package simulates the hardware side of the paper's setup:

* :mod:`repro.rfid.readers` — reader placement and the three-state radial
  detection model (detection probability vs distance, attenuated by walls);
* :mod:`repro.rfid.calibration` — the paper's calibration procedure (a tag
  held for 30 seconds in every 0.5 m cell) producing the matrix ``F[r, c]``;
* :mod:`repro.rfid.priors` — the a-priori distribution ``p*(l | R)`` of
  Section 6.2, computed from ``F``.
"""

from repro.rfid.calibration import DetectionMatrix, calibrate, exact_matrix
from repro.rfid.priors import PriorModel
from repro.rfid.readers import Reader, ReaderModel, place_default_readers

__all__ = [
    "Reader",
    "ReaderModel",
    "place_default_readers",
    "DetectionMatrix",
    "calibrate",
    "exact_matrix",
    "PriorModel",
]
