"""The a-priori distribution ``p*(l | R)`` of Section 6.2.

Given the calibrated detection matrix ``F``, the probability that an object
detected by *all and only* the readers in ``R`` is at location ``l`` is::

    p*(l | R) = sum_{c in Cells(l)} prod_{r in R} F[r, c]
                ------------------------------------------
                sum_{c in Cells}   prod_{r in R} F[r, c]

with a uniform fallback over all locations when no cell is covered by every
reader in ``R`` (the paper's "no a-priori knowledge" case).  Note the paper's
formula uses only the readers *in* ``R``; the ``negative_evidence`` option
adds the ``prod_{r not in R} (1 - F[r, c])`` factors of the full
all-and-only likelihood — the two variants are compared by an ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import CalibrationError
from repro.rfid.calibration import DetectionMatrix

__all__ = ["PriorModel"]


class PriorModel:
    """Computes and caches ``p*(l | R)`` distributions from a detection matrix.

    Parameters
    ----------
    matrix:
        The calibrated ``F[r, c]`` matrix.
    negative_evidence:
        If true, cells also pay a ``(1 - F[r, c])`` factor for every reader
        *not* in ``R`` (the exact "all and only" likelihood).  The paper's
        formula (the default) ignores undetecting readers.
    min_probability:
        Locations whose probability falls below this threshold are dropped
        and the rest renormalised.  0 (the default) reproduces the paper;
        small positive values trade a little fidelity for smaller
        l-sequences.  Must be < 1.
    ghost_read_rate:
        The assumed false-positive rate of the readers.  The paper's
        formula implicitly assumes readers never fire spuriously, which
        makes it brittle: a single ghost detection forces the cell weight
        through that reader's (often zero) field.  A positive rate floors
        every ``F[r, c]`` at this value when computing weights, matching a
        detection model where any reader fires with at least that
        probability — the ghost-read ablation benchmark shows the effect.
    """

    def __init__(self, matrix: DetectionMatrix, *,
                 negative_evidence: bool = False,
                 min_probability: float = 0.0,
                 ghost_read_rate: float = 0.0) -> None:
        if not (0.0 <= min_probability < 1.0):
            raise CalibrationError(
                f"min_probability must be in [0, 1), got {min_probability}")
        if not (0.0 <= ghost_read_rate < 1.0):
            raise CalibrationError(
                f"ghost_read_rate must be in [0, 1), got {ghost_read_rate}")
        self.matrix = matrix
        self.negative_evidence = negative_evidence
        self.min_probability = min_probability
        self.ghost_read_rate = ghost_read_rate
        self.location_names: Tuple[str, ...] = matrix.grid.building.location_names
        self._location_ids = matrix.grid.location_index_array()
        self._num_locations = len(self.location_names)
        self._reader_index = {name: i for i, name in enumerate(matrix.reader_names)}
        self._cache: Dict[FrozenSet[str], Dict[str, float]] = {}

    def distribution(self, readers: Iterable[str]) -> Dict[str, float]:
        """``p*(. | R)`` as a dict location -> probability (non-zero entries).

        ``readers`` is the set ``R`` of readers that detected the object at
        one timestep; it may be empty (the object was detected by no reader).
        The returned dict always sums to 1 (up to float rounding) and is
        cached per reader set — callers must not mutate it.
        """
        key = frozenset(readers)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        distribution = self._compute(key)
        self._cache[key] = distribution
        return distribution

    def support(self, readers: Iterable[str]) -> Tuple[str, ...]:
        """The locations given non-zero probability for reader set ``R``."""
        return tuple(self.distribution(readers).keys())

    # ------------------------------------------------------------------
    def _compute(self, readers: FrozenSet[str]) -> Dict[str, float]:
        indices = []
        for name in readers:
            index = self._reader_index.get(name)
            if index is None:
                raise CalibrationError(f"unknown reader in reading: {name!r}")
            indices.append(index)
        # Frozenset iteration order is hash-randomised per process; the
        # row product below is only ULP-associative, so sort the indices
        # to keep distributions bit-identical across interpreter runs
        # (GraphStore content keys hash these doubles verbatim).
        indices.sort()

        values = self.matrix.values
        if self.ghost_read_rate > 0.0:
            values = np.maximum(values, self.ghost_read_rate)
        if indices:
            weights = np.prod(values[indices, :], axis=0)
        else:
            weights = np.ones(values.shape[1], dtype=np.float64)
        if self.negative_evidence:
            others = [i for i in range(values.shape[0]) if i not in set(indices)]
            if others:
                weights = weights * np.prod(1.0 - values[others, :], axis=0)

        total = float(weights.sum())
        if total <= 0.0:
            # No cell is compatible with R: uniform over all locations.
            uniform = 1.0 / self._num_locations
            return {name: uniform for name in self.location_names}

        per_location = np.bincount(self._location_ids, weights=weights,
                                   minlength=self._num_locations)
        probabilities = per_location / total
        if self.min_probability > 0.0:
            probabilities = self._apply_threshold(probabilities)
        return {self.location_names[i]: float(p)
                for i, p in enumerate(probabilities) if p > 0.0}

    def _apply_threshold(self, probabilities: np.ndarray) -> np.ndarray:
        kept = np.where(probabilities >= self.min_probability, probabilities, 0.0)
        total = kept.sum()
        if total <= 0.0:
            # Everything fell below the threshold; keep the single best
            # location rather than returning an empty distribution.
            kept = np.zeros_like(probabilities)
            kept[int(np.argmax(probabilities))] = 1.0
            return kept
        return kept / total
