"""RFID readers: placement and the radial detection model.

The paper does not fix a detection model — it learns ``F[r, c]`` physically —
but cites the *three-state model* of Chen et al. [4] as the canonical choice.
We implement that shape: a *major* region where detection is reliable, a
linearly decaying *minor* region, and nothing beyond the maximum range.
Walls attenuate the signal multiplicatively, which is what creates the
cross-location ambiguity (a reader near a wall detects tags in two rooms)
the cleaning framework exists to resolve.

Readers only ever detect tags on their own floor: the concrete slabs between
floors are treated as opaque.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import MapModelError
from repro.geometry import Point
from repro.mapmodel.building import Building

__all__ = ["Reader", "ReaderModel", "place_default_readers"]

#: Default three-state model parameters (metres / probability).
DEFAULT_MAJOR_RADIUS = 2.5
DEFAULT_MAX_RADIUS = 5.5
DEFAULT_MAJOR_PROBABILITY = 0.95
#: Default per-wall signal attenuation factor.
DEFAULT_WALL_ATTENUATION = 0.55


@dataclass(frozen=True)
class Reader:
    """One RFID reader antenna.

    ``major_radius``/``max_radius``/``major_probability`` parameterise the
    three-state detection curve; they may differ per reader to model
    heterogeneous hardware.
    """

    name: str
    floor: int
    position: Point
    major_radius: float = DEFAULT_MAJOR_RADIUS
    max_radius: float = DEFAULT_MAX_RADIUS
    major_probability: float = DEFAULT_MAJOR_PROBABILITY

    def __post_init__(self) -> None:
        if not (0.0 < self.major_radius <= self.max_radius):
            raise MapModelError(
                f"reader {self.name!r}: need 0 < major_radius <= max_radius")
        if not (0.0 < self.major_probability <= 1.0):
            raise MapModelError(
                f"reader {self.name!r}: major_probability must be in (0, 1]")

    def base_probability(self, distance: float) -> float:
        """Detection probability at ``distance`` metres, ignoring walls."""
        if distance <= self.major_radius:
            return self.major_probability
        if distance >= self.max_radius:
            return 0.0
        span = self.max_radius - self.major_radius
        return self.major_probability * (self.max_radius - distance) / span


class ReaderModel:
    """A set of readers deployed in a building, with wall attenuation."""

    def __init__(self, building: Building, readers: Sequence[Reader],
                 wall_attenuation: float = DEFAULT_WALL_ATTENUATION) -> None:
        if not readers:
            raise MapModelError("a reader model needs at least one reader")
        if not (0.0 <= wall_attenuation <= 1.0):
            raise MapModelError(
                f"wall_attenuation must be in [0, 1], got {wall_attenuation}")
        names = [reader.name for reader in readers]
        if len(set(names)) != len(names):
            raise MapModelError("duplicate reader names")
        self.building = building
        self.readers: Tuple[Reader, ...] = tuple(readers)
        self.wall_attenuation = wall_attenuation
        self._index: Dict[str, int] = {r.name: i for i, r in enumerate(self.readers)}

    @property
    def reader_names(self) -> Tuple[str, ...]:
        return tuple(reader.name for reader in self.readers)

    def __len__(self) -> int:
        return len(self.readers)

    def reader(self, name: str) -> Reader:
        try:
            return self.readers[self._index[name]]
        except KeyError:
            raise MapModelError(f"unknown reader {name!r}") from None

    def detection_probability(self, reader: Reader, floor: int, point: Point) -> float:
        """Probability that ``reader`` detects a tag at ``point`` on ``floor``.

        Zero across floors; otherwise the three-state radial curve times
        ``wall_attenuation ** walls`` where ``walls`` is the number of wall
        segments crossed by the straight line from the antenna to the tag.
        """
        if reader.floor != floor:
            return 0.0
        distance = reader.position.distance_to(point)
        base = reader.base_probability(distance)
        if base == 0.0:
            return 0.0
        walls = self.building.walls_between(floor, reader.position, point)
        if walls == 0:
            return base
        return base * (self.wall_attenuation ** walls)

    def detection_probabilities(self, floor: int, point: Point) -> List[float]:
        """Per-reader detection probabilities (in ``readers`` order)."""
        return [self.detection_probability(reader, floor, point)
                for reader in self.readers]


def place_default_readers(building: Building, *,
                          major_radius: float = DEFAULT_MAJOR_RADIUS,
                          max_radius: float = DEFAULT_MAX_RADIUS,
                          major_probability: float = DEFAULT_MAJOR_PROBABILITY,
                          reader_spacing: float = 4.0,
                          wall_attenuation: float = DEFAULT_WALL_ATTENUATION,
                          ) -> ReaderModel:
    """A sensible default deployment, in the spirit of Fig. 1(a).

    Every location gets readers spread along its longer axis, roughly
    ``reader_spacing`` metres apart, so (like the paper's physical setup)
    nearly every point of the map is within range of some antenna while
    fields still bleed into neighbouring locations through doorways and
    walls — the ambiguity the cleaning framework targets.
    """
    readers: List[Reader] = []
    for location in building.locations:
        prefix = f"r_{location.name}"
        rect = location.rect
        horizontal = rect.width >= rect.height
        span = rect.width if horizontal else rect.height
        count = max(1, int(round(span / reader_spacing)))
        for i in range(count):
            frac = (i + 0.5) / count
            if horizontal:
                pos = Point(rect.x0 + frac * rect.width, rect.center.y)
            else:
                pos = Point(rect.center.x, rect.y0 + frac * rect.height)
            name = prefix if count == 1 else f"{prefix}_{i}"
            readers.append(Reader(
                name=name, floor=location.floor, position=pos,
                major_radius=major_radius, max_radius=max_radius,
                major_probability=major_probability))
    return ReaderModel(building, readers, wall_attenuation=wall_attenuation)
