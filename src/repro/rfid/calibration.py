"""Calibration of the detection matrix ``F[r, c]`` (Section 6.2).

The paper obtains ``F`` physically: a tag is held inside each 0.5 m grid
cell for 30 seconds and ``F[r, c]`` is the fraction of the 30 one-second
epochs in which reader ``r`` detected it.  :func:`calibrate` simulates that
procedure verbatim against a :class:`~repro.rfid.readers.ReaderModel` —
the resulting matrix carries genuine sampling noise, exactly like a physical
calibration would.  :func:`exact_matrix` returns the underlying expected
probabilities instead (useful for the reading generator, whose ``F`` the
paper treats as ground truth).
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import CalibrationError
from repro.mapmodel.grid import Grid
from repro.rfid.readers import ReaderModel

__all__ = ["DetectionMatrix", "exact_matrix", "calibrate"]

#: The paper's calibration duration: 30 one-second epochs per cell.
DEFAULT_CALIBRATION_EPOCHS = 30


class DetectionMatrix:
    """The matrix ``F[r, c]``: readers on rows, grid cells on columns.

    ``F[r, c]`` is interpreted as the probability that a tag staying in cell
    ``c`` for one timestep is detected by reader ``r`` (readers behave
    independently).  The matrix is the single interface between the physical
    substrate and the probabilistic machinery: both the prior model and the
    reading generator consume it.
    """

    def __init__(self, values: np.ndarray, grid: Grid, reader_names) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise CalibrationError(f"F must be 2-D, got shape {values.shape}")
        if values.shape[0] != len(reader_names):
            raise CalibrationError(
                f"F has {values.shape[0]} rows but {len(reader_names)} readers")
        if values.shape[1] != grid.num_cells:
            raise CalibrationError(
                f"F has {values.shape[1]} columns but the grid has "
                f"{grid.num_cells} cells")
        if np.any(values < 0.0) or np.any(values > 1.0):
            raise CalibrationError("F entries must be probabilities in [0, 1]")
        self.values = values
        self.grid = grid
        self.reader_names = tuple(reader_names)
        self._reader_index = {name: i for i, name in enumerate(self.reader_names)}

    @property
    def num_readers(self) -> int:
        return self.values.shape[0]

    @property
    def num_cells(self) -> int:
        return self.values.shape[1]

    def reader_row(self, name: str) -> np.ndarray:
        """The per-cell detection probabilities of reader ``name``."""
        try:
            return self.values[self._reader_index[name]]
        except KeyError:
            raise CalibrationError(f"unknown reader {name!r}") from None

    def cell_column(self, cell_index: int) -> np.ndarray:
        """The per-reader detection probabilities for one cell."""
        return self.values[:, cell_index]

    def coverage(self) -> np.ndarray:
        """Per-cell probability of being detected by at least one reader."""
        return 1.0 - np.prod(1.0 - self.values, axis=0)


def exact_matrix(model: ReaderModel, grid: Grid) -> DetectionMatrix:
    """The expected detection matrix implied by the reader model."""
    values = np.zeros((len(model), grid.num_cells), dtype=np.float64)
    for r, reader in enumerate(model.readers):
        for cell in grid.cells:
            values[r, cell.index] = model.detection_probability(
                reader, cell.floor, cell.center)
    return DetectionMatrix(values, grid, model.reader_names)


def calibrate(model: ReaderModel, grid: Grid,
              epochs: int = DEFAULT_CALIBRATION_EPOCHS,
              rng: Optional[np.random.Generator] = None) -> DetectionMatrix:
    """Simulate the paper's calibration run.

    For each cell, a tag is 'held' in the cell for ``epochs`` independent
    one-second epochs and each reader's detections are counted;
    ``F[r, c] = detections / epochs``.  Deterministic given ``rng``.
    """
    if epochs < 1:
        raise CalibrationError(f"epochs must be >= 1, got {epochs}")
    if rng is None:
        rng = np.random.default_rng()
    expected = exact_matrix(model, grid).values
    counts = rng.binomial(epochs, expected)
    return DetectionMatrix(counts / float(epochs), grid, model.reader_names)
