"""Text rendering of maps and position estimates (no plotting deps).

Terminal-friendly views used by the CLI and the examples:

* :func:`render_floor` — an ASCII floor plan (rooms, doors, readers);
* :func:`render_marginal` — the same plan with a position distribution
  painted over it (shade per location);
* :func:`render_entropy_sparkline` — a one-line uncertainty profile.

These renderers are deliberately coarse: one character per ``scale``
metres, shared walls drawn once, locations labelled by index with a
legend.  They exist to make cleaned data *inspectable*, not pretty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.mapmodel.building import Building
from repro.rfid.readers import ReaderModel

__all__ = ["render_floor", "render_marginal", "render_entropy_sparkline"]

#: Shade ramp for probabilities (low -> high); avoids the wall glyphs.
_SHADES = " .,:;ox*%@"


def _floor_canvas(building: Building, floor: int, scale: float
                  ) -> Tuple[List[List[str]], float, float, int, int]:
    bounds = building.floor_bounds(floor)
    width = max(1, int(round(bounds.width / scale)))
    height = max(1, int(round(bounds.height / scale)))
    canvas = [[" "] * (width + 1) for _ in range(height + 1)]
    return canvas, bounds.x0, bounds.y0, width, height


def _paint_walls(canvas, building: Building, floor: int, x0: float,
                 y0: float, scale: float) -> None:
    for location in building.locations_on_floor(floor):
        rect = location.rect
        cx0 = int(round((rect.x0 - x0) / scale))
        cx1 = int(round((rect.x1 - x0) / scale))
        cy0 = int(round((rect.y0 - y0) / scale))
        cy1 = int(round((rect.y1 - y0) / scale))
        for cx in range(cx0, cx1 + 1):
            for cy in (cy0, cy1):
                if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
                    canvas[cy][cx] = "-"
        for cy in range(cy0, cy1 + 1):
            for cx in (cx0, cx1):
                if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
                    canvas[cy][cx] = "|" if canvas[cy][cx] != "-" else "+"


def _paint_doors(canvas, building: Building, floor: int, x0: float,
                 y0: float, scale: float) -> None:
    for door in building.doors:
        for name in (door.loc_a, door.loc_b):
            location = building.location(name)
            if location.floor != floor:
                continue
            point = door.point_in(name)
            cx = int(round((point.x - x0) / scale))
            cy = int(round((point.y - y0) / scale))
            if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
                canvas[cy][cx] = "/"


def _interior_fill(canvas, building: Building, floor: int, x0: float,
                   y0: float, scale: float,
                   fill_for: Dict[str, str]) -> None:
    for location in building.locations_on_floor(floor):
        glyph = fill_for.get(location.name)
        if glyph is None:
            continue
        rect = location.rect
        cx0 = int(round((rect.x0 - x0) / scale)) + 1
        cx1 = int(round((rect.x1 - x0) / scale)) - 1
        cy0 = int(round((rect.y0 - y0) / scale)) + 1
        cy1 = int(round((rect.y1 - y0) / scale)) - 1
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
                    canvas[cy][cx] = glyph


def _finish(canvas) -> str:
    # Row 0 is the bottom of the map: flip for natural reading.
    return "\n".join("".join(row).rstrip() for row in reversed(canvas))


def render_floor(building: Building, floor: int, *,
                 readers: Optional[ReaderModel] = None,
                 scale: float = 1.0) -> str:
    """An ASCII plan of one floor (walls, doors, optional reader marks)."""
    canvas, x0, y0, _, _ = _floor_canvas(building, floor, scale)
    # Label interiors with a per-location index so rooms are identifiable.
    labels = {}
    legend = []
    for i, location in enumerate(building.locations_on_floor(floor)):
        glyph = str(i % 10)
        labels[location.name] = glyph
        legend.append(f"{glyph}={location.name}")
    _interior_fill(canvas, building, floor, x0, y0, scale,
                   {name: " " for name in labels})
    _paint_walls(canvas, building, floor, x0, y0, scale)
    _paint_doors(canvas, building, floor, x0, y0, scale)
    if readers is not None:
        for reader in readers.readers:
            if reader.floor != floor:
                continue
            cx = int(round((reader.position.x - x0) / scale))
            cy = int(round((reader.position.y - y0) / scale))
            if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
                canvas[cy][cx] = "R"
    # Single label character at each room centre (labels win over reader
    # marks — identity beats instrumentation when they collide).
    for location in building.locations_on_floor(floor):
        center = location.rect.center
        cx = int(round((center.x - x0) / scale))
        cy = int(round((center.y - y0) / scale))
        if 0 <= cy < len(canvas) and 0 <= cx < len(canvas[0]):
            canvas[cy][cx] = labels[location.name]
    return _finish(canvas) + "\n" + "  ".join(legend)


def render_marginal(building: Building, floor: int,
                    marginal: Dict[str, float], *,
                    scale: float = 1.0) -> str:
    """A floor plan shaded by a position distribution.

    Locations on other floors contribute to the reported off-floor mass
    line instead of the drawing.
    """
    canvas, x0, y0, _, _ = _floor_canvas(building, floor, scale)
    fills: Dict[str, str] = {}
    on_floor = 0.0
    for location in building.locations_on_floor(floor):
        probability = marginal.get(location.name, 0.0)
        on_floor += probability
        index = min(len(_SHADES) - 1, int(probability * (len(_SHADES) - 1)
                                          + 0.999)) if probability > 0 else 0
        fills[location.name] = _SHADES[index]
    _interior_fill(canvas, building, floor, x0, y0, scale, fills)
    _paint_walls(canvas, building, floor, x0, y0, scale)
    _paint_doors(canvas, building, floor, x0, y0, scale)
    footer = (f"on-floor mass: {on_floor:.3f}   "
              f"off-floor mass: {max(0.0, 1.0 - on_floor):.3f}")
    return _finish(canvas) + "\n" + footer


def render_entropy_sparkline(values: Sequence[float], width: int = 72) -> str:
    """A one-line sparkline of an uncertainty (entropy) profile."""
    if not values:
        return ""
    actual_peak = max(values)
    peak = actual_peak or 1.0
    if len(values) > width:
        # Downsample by averaging buckets.
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int(i * bucket) + 1,
                                           int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket):max(int(i * bucket) + 1,
                                                    int((i + 1) * bucket))]))
            for i in range(width)
        ]
    ramp = " ▁▂▃▄▅▆▇█"
    line = "".join(
        ramp[min(len(ramp) - 1, int(value / peak * (len(ramp) - 1) + 0.5))]
        for value in values)
    return f"[{line}] peak={actual_peak:.2f} bits"
