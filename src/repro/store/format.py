"""The ``rfid-ctg/ctg@1`` single-file binary graph codec.

A ``.ctg`` file carries one finished
:class:`~repro.core.flatgraph.FlatCTGraph` as raw little-endian columns,
laid out so a loader can hand out per-level array views over a single
``mmap`` without parsing, copying or boxing anything:

``fixed header`` (64 bytes, little-endian)
    ``magic`` (8 bytes, ``b"RFIDCTG\\x00"``), ``version`` (u32, 1),
    ``flags`` (u32, bit 0 = stats section present), ``duration`` (u32),
    ``num_location_names`` (u32), ``num_nodes`` (u64), ``num_edges``
    (u64), ``section_table_offset`` (u64, absolute), ``payload_length``
    (u64, everything after the header) and ``checksum`` (u32, CRC-32 of
    the payload), then 4 reserved bytes.

``string table``
    ``num_location_names`` entries of ``u32 byte length`` + UTF-8 bytes —
    the interned location names, in id order.

``stats section`` (optional, flag bit 0)
    ``u32 length`` + a UTF-8 JSON object of the
    :class:`~repro.core.algorithm.CleaningStats` fields.

``column sections`` (each 8-byte aligned)
    In a fixed canonical order: per level ``tau`` the ``locations`` and
    ``stays`` columns (int32; a ``None`` stay is stored as ``-1``), per
    edge level ``tau`` the CSR ``edge_offsets``/``edge_children`` columns
    (int32) and the ``edge_probabilities`` column (float64), then the
    ``source_probabilities`` column (float64).

``section table`` (8-byte aligned, at ``section_table_offset``)
    One ``(u64 absolute byte offset, u64 element count)`` pair per column
    section, in the same canonical order.  Explicit offsets make every
    section independently addressable — a reader never has to walk the
    columns to find one.

The 8-byte alignment means the float64 sections can always be viewed
in place (``numpy.frombuffer`` / ``memoryview.cast``); the CRC-32 makes
corruption detectable (:func:`load_ctg` verifies it on ``verify=True``).
Structural bounds — magic, version, section offsets and counts against
the payload — are *always* validated at load, so a truncated file fails
with a typed :class:`~repro.errors.StoreFormatError` instead of an
out-of-bounds read later.

This module is the **one authoritative codec** for the format: lint rule
L010 forbids raw ``struct`` packing/unpacking of ``.ctg`` bytes anywhere
outside ``repro/store/``.

A second, sibling format lives here for the same reason: the
``rfid-ctg/ckpt@1`` **stream checkpoint** written by
:class:`repro.streaming.StreamingCleaner` (see
:func:`write_stream_checkpoint` / :func:`read_stream_checkpoint`).  It
shares the house style of the graph codec — little-endian fixed header,
interned string table, CRC-32 over the payload, atomic tmp →
``os.replace`` publish — but carries *in-flight* state instead of a
finished graph: the retained candidate rows and the per-level forward
frontiers, both with bit-exact float64 probabilities, plus a JSON meta
section (window, eviction base, options, constraints).  Probabilities
round-trip as raw doubles, which is what makes a resumed session
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import json
import mmap as _mmap
import os
import struct
import sys
import zlib
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core import kernels
from repro.core.flatgraph import FlatCTGraph
from repro.errors import QueryError, StoreChecksumError, StoreFormatError

__all__ = [
    "CTG_MAGIC",
    "CTG_VERSION",
    "CKPT_MAGIC",
    "CKPT_VERSION",
    "HEADER_BYTES",
    "CheckpointPayload",
    "CheckpointState",
    "MappedCTGraph",
    "SHARD_MANIFEST",
    "ensure_shard_manifest",
    "load_ctg",
    "read_stream_checkpoint",
    "read_shard_manifest",
    "save_ctg",
    "write_ctg",
    "write_stream_checkpoint",
]

CTG_MAGIC = b"RFIDCTG\x00"
CTG_VERSION = 1

CKPT_MAGIC = b"RFIDCKP\x00"
CKPT_VERSION = 1

#: magic, version, flags, duration, num_names, num_nodes, num_edges,
#: section_table_offset, payload_length, checksum, 4 reserved bytes.
_HEADER = struct.Struct("<8sIIIIQQQQI4x")
HEADER_BYTES = _HEADER.size
_SECTION_ENTRY = struct.Struct("<QQ")
_LENGTH = struct.Struct("<I")
_FLAG_STATS = 1
_ALIGN = 8

#: The array typecode whose machine width is 4 bytes (``"i"`` on every
#: platform CPython supports; ``"l"`` is the documented fallback).
_I32 = "i" if array("i").itemsize == 4 else "l"

try:  # the *writer* accepts ndarrays whenever numpy is importable at all
    import numpy as _np  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None  # type: ignore[assignment]

#: One column of a loaded graph: an ndarray slice, a ``memoryview`` cast,
#: or a byteswapped ``array.array`` copy (big-endian hosts only).
Column = Union["_np.ndarray", memoryview, array]  # type: ignore[name-defined]


def _section_plan(duration: int) -> Iterator[Tuple[str, int, int]]:
    """The canonical ``(kind, level, itemsize)`` order of the sections."""
    for tau in range(duration):
        yield ("loc", tau, 4)
        yield ("stay", tau, 4)
    for tau in range(duration - 1):
        yield ("off", tau, 4)
        yield ("child", tau, 4)
        yield ("prob", tau, 8)
    yield ("source", 0, 8)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_i32(values: Sequence[int]) -> bytes:
    if _np is not None and isinstance(values, _np.ndarray):
        return _np.ascontiguousarray(values, dtype="<i4").tobytes()
    encoded = array(_I32, values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        encoded.byteswap()
    return encoded.tobytes()


def _encode_f64(values: Sequence[float]) -> bytes:
    if _np is not None and isinstance(values, _np.ndarray):
        return _np.ascontiguousarray(values, dtype="<f8").tobytes()
    encoded = array("d", values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        encoded.byteswap()
    return encoded.tobytes()


def _encode_stays(row: Sequence[Optional[int]]) -> bytes:
    if _np is not None and isinstance(row, _np.ndarray):
        return _encode_i32(row)  # already sentinel-encoded
    return _encode_i32([-1 if stay is None else stay for stay in row])


class _CrcWriter:
    """Streams payload chunks, tracking position and the running CRC-32."""

    def __init__(self, fh, position: int) -> None:
        self._fh = fh
        self.position = position
        self.crc = 0

    def write(self, data: bytes) -> None:
        self._fh.write(data)
        self.crc = zlib.crc32(data, self.crc)
        self.position += len(data)

    def align(self) -> None:
        pad = -self.position % _ALIGN
        if pad:
            self.write(b"\x00" * pad)


def write_ctg(path, *, location_names: Sequence[str],
              locations: Sequence[Sequence[int]],
              stays: Sequence[Sequence[Optional[int]]],
              edge_offsets: Sequence[Sequence[int]],
              edge_children: Sequence[Sequence[int]],
              edge_probabilities: Sequence[Sequence[float]],
              source_probabilities: Sequence[float],
              stats=None) -> int:
    """Write one graph's columns as a ``.ctg`` file; returns bytes written.

    Each column may be a plain sequence (tuple/list), an ``array.array``
    or a numpy ndarray — the engine's direct-write path hands the int64 /
    float64 ndarrays of its backward sweep straight in, skipping Python
    tuple materialisation entirely.  ``stays`` rows may hold ``None``
    (encoded as ``-1``) unless passed as an ndarray, which must already
    be sentinel-encoded.
    """
    duration = len(locations)
    if duration < 1:
        raise StoreFormatError("a .ctg graph needs at least one level")
    if not (len(stays) == duration
            and len(edge_offsets) == duration - 1
            and len(edge_children) == duration - 1
            and len(edge_probabilities) == duration - 1):
        raise StoreFormatError("level array lengths disagree")
    num_nodes = sum(len(level) for level in locations)
    num_edges = sum(len(children) for children in edge_children)
    flags = 0
    stats_blob = b""
    if stats is not None:
        flags |= _FLAG_STATS
        stats_blob = json.dumps(
            {field.name: getattr(stats, field.name)
             for field in dataclasses.fields(stats)},
            sort_keys=True).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(b"\x00" * HEADER_BYTES)  # patched after the payload
        writer = _CrcWriter(fh, HEADER_BYTES)
        for name in location_names:
            encoded = name.encode("utf-8")
            writer.write(_LENGTH.pack(len(encoded)))
            writer.write(encoded)
        writer.align()
        if stats_blob:
            writer.write(_LENGTH.pack(len(stats_blob)))
            writer.write(stats_blob)
            writer.align()
        table: List[Tuple[int, int]] = []
        for kind, tau, _itemsize in _section_plan(duration):
            if kind == "loc":
                column, data = locations[tau], _encode_i32(locations[tau])
            elif kind == "stay":
                column, data = stays[tau], _encode_stays(stays[tau])
            elif kind == "off":
                column = edge_offsets[tau]
                data = _encode_i32(column)
            elif kind == "child":
                column = edge_children[tau]
                data = _encode_i32(column)
            elif kind == "prob":
                column = edge_probabilities[tau]
                data = _encode_f64(column)
            else:
                column = source_probabilities
                data = _encode_f64(column)
            writer.align()
            table.append((writer.position, len(column)))
            writer.write(data)
        writer.align()
        table_offset = writer.position
        for offset, count in table:
            writer.write(_SECTION_ENTRY.pack(offset, count))
        payload_length = writer.position - HEADER_BYTES
        fh.seek(0)
        fh.write(_HEADER.pack(
            CTG_MAGIC, CTG_VERSION, flags, duration, len(location_names),
            num_nodes, num_edges, table_offset, payload_length, writer.crc))
    return HEADER_BYTES + payload_length


def save_ctg(graph, path) -> int:
    """Write a finished graph as a ``.ctg`` file; returns bytes written.

    Accepts a :class:`~repro.core.flatgraph.FlatCTGraph`, a
    :class:`MappedCTGraph` view (re-encoding round-trips exactly), or a
    node-form :class:`~repro.core.ctgraph.CTGraph` (converted through
    ``to_flat()`` first).
    """
    from repro.core.ctgraph import CTGraph  # lazy: keeps the DAG shallow

    if isinstance(graph, CTGraph):
        graph = graph.to_flat()
    return write_ctg(
        path,
        location_names=tuple(graph.location_names),
        locations=graph.locations,
        stays=graph.stays,
        edge_offsets=graph.edge_offsets,
        edge_children=graph.edge_children,
        edge_probabilities=graph.edge_probabilities,
        source_probabilities=graph.source_probabilities,
        stats=graph.stats)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _decode_i32_python(buffer, offset: int, count: int) -> Column:
    view = memoryview(buffer)[offset:offset + 4 * count]
    if sys.byteorder == "little":
        return view.cast(_I32)
    decoded = array(_I32)  # pragma: no cover - big-endian hosts only
    decoded.frombytes(view)
    decoded.byteswap()
    return decoded


def _decode_f64_python(buffer, offset: int, count: int) -> Column:
    view = memoryview(buffer)[offset:offset + 8 * count]
    if sys.byteorder == "little":
        return view.cast("d")
    decoded = array("d")  # pragma: no cover - big-endian hosts only
    decoded.frombytes(view)
    decoded.byteswap()
    return decoded


def _to_tuple(column: Column) -> tuple:
    """One column as a plain tuple (ndarray, memoryview and array.array
    all expose ``tolist``, which round-trips int32/float64 exactly)."""
    return tuple(column.tolist())


class MappedCTGraph:
    """A read-only, ``FlatCTGraph``-compatible view over one ``.ctg`` buffer.

    Every column attribute (``locations``, ``edge_offsets``,
    ``edge_children``, ``edge_probabilities``, ``source_probabilities``)
    is a zero-copy slice of the single backing buffer — ndarray views
    when numpy is importable, ``memoryview`` casts otherwise — so a
    :class:`~repro.queries.session.QuerySession` (and the
    :class:`~repro.core.kernels.GraphViews` kernels under it) consume the
    file without deserialising it.  ``stays`` decodes lazily into the
    canonical ``Optional[int]`` tuples (the one column whose ``-1``
    sentinel needs boxing); everything else stays on the mmap.

    The view quacks like a :class:`~repro.core.flatgraph.FlatCTGraph`
    everywhere queries look — ``duration``, ``num_nodes``/``num_edges``,
    ``level_size``, ``location_name``/``locations_at``, subscriptable
    columns — and ``materialize()`` converts to a real ``FlatCTGraph``
    (tuple equality with the original pins round-trips in the tests).
    ``close()`` drops the column views and unmaps the buffer; the view is
    also a context manager.
    """

    __slots__ = ("path", "backing", "location_names", "locations",
                 "edge_offsets", "edge_children", "edge_probabilities",
                 "source_probabilities", "stats", "_stay_columns",
                 "_stays", "_num_nodes", "_num_edges", "_mmap")

    def __init__(self, *, path, backing: str,
                 location_names: Tuple[str, ...],
                 locations: Tuple[Column, ...],
                 stay_columns: Tuple[Column, ...],
                 edge_offsets: Tuple[Column, ...],
                 edge_children: Tuple[Column, ...],
                 edge_probabilities: Tuple[Column, ...],
                 source_probabilities: Column,
                 num_nodes: int, num_edges: int, stats=None,
                 mapped: Optional[_mmap.mmap] = None) -> None:
        self.path = path
        self.backing = backing
        self.location_names = location_names
        self.locations = locations
        self.edge_offsets = edge_offsets
        self.edge_children = edge_children
        self.edge_probabilities = edge_probabilities
        self.source_probabilities = source_probabilities
        self.stats = stats
        self._stay_columns = stay_columns
        self._stays: Optional[Tuple[Tuple[Optional[int], ...], ...]] = None
        self._num_nodes = num_nodes
        self._num_edges = num_edges
        self._mmap = mapped

    # -- the FlatCTGraph surface ---------------------------------------
    @property
    def stays(self) -> Tuple[Tuple[Optional[int], ...], ...]:
        if self._stays is None:
            self._stays = tuple(
                tuple(None if stay == -1 else stay
                      for stay in column.tolist())
                for column in self._stay_columns)
        return self._stays

    @property
    def duration(self) -> int:
        return len(self.locations)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def level_size(self, tau: int) -> int:
        if not 0 <= tau < len(self.locations):
            raise QueryError(
                f"timestep {tau} outside [0, {len(self.locations)})")
        return len(self.locations[tau])

    def location_name(self, lid: int) -> str:
        return self.location_names[lid]

    def locations_at(self, tau: int) -> Tuple[str, ...]:
        if not 0 <= tau < len(self.locations):
            raise QueryError(
                f"timestep {tau} outside [0, {len(self.locations)})")
        names = self.location_names
        return tuple(sorted({names[lid] for lid in self.locations[tau]}))

    def estimate_size_bytes(self) -> int:
        """The actual on-disk size of the backing ``.ctg`` file.

        Unlike the in-memory graphs' heuristic estimates this is exact —
        the view *is* the file — which is also what makes it the
        reference the advisor's ``estimate_ctg_bytes`` prediction is
        pinned against in the tests.
        """
        return os.path.getsize(self.path)

    def trajectory_probability(self, trajectory: Sequence[str]) -> float:
        """Conditioned probability of one concrete location sequence.

        The flat-column analogue of
        :meth:`~repro.core.ctgraph.CTGraph.trajectory_probability`: a
        forward pass that keeps only the nodes whose location matches the
        next element (several nodes per level may match — they differ in
        stay state).
        """
        if len(trajectory) != self.duration:
            raise QueryError(
                f"trajectory has {len(trajectory)} steps; graph duration "
                f"is {self.duration}")
        ids = {name: lid for lid, name in enumerate(self.location_names)}
        first = ids.get(trajectory[0])
        lids = self.locations[0]
        mass = {i: float(self.source_probabilities[i])
                for i in range(len(lids)) if lids[i] == first}
        for tau in range(self.duration - 1):
            target = ids.get(trajectory[tau + 1])
            offsets = self.edge_offsets[tau]
            children = self.edge_children[tau]
            probabilities = self.edge_probabilities[tau]
            next_lids = self.locations[tau + 1]
            step: Dict[int, float] = {}
            for i, amount in mass.items():
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    if next_lids[child] == target:
                        step[child] = (step.get(child, 0.0)
                                       + amount * float(probabilities[e]))
            mass = step
            if not mass:
                return 0.0
        return sum(mass.values())

    def num_valid_trajectories(self) -> int:
        return self.materialize().num_valid_trajectories()

    def validate(self, tolerance: float = 1e-6) -> None:
        """Full Definition 4 validation (via a materialised copy)."""
        self.materialize().validate(tolerance)

    # -- conversion and lifecycle --------------------------------------
    def materialize(self) -> FlatCTGraph:
        """The canonical in-memory :class:`FlatCTGraph` of this view."""
        return FlatCTGraph(
            location_names=self.location_names,
            locations=tuple(_to_tuple(column) for column in self.locations),
            stays=self.stays,
            edge_offsets=tuple(_to_tuple(column)
                               for column in self.edge_offsets),
            edge_children=tuple(_to_tuple(column)
                                for column in self.edge_children),
            edge_probabilities=tuple(_to_tuple(column)
                                     for column in self.edge_probabilities),
            source_probabilities=_to_tuple(self.source_probabilities),
            stats=self.stats)

    def close(self) -> None:
        """Drop the column views and unmap the backing buffer.

        If a caller still holds a column view the unmap is deferred to
        garbage collection (closing the mmap would raise ``BufferError``
        while exports exist); the view itself is unusable either way.
        """
        self.locations = ()
        self.edge_offsets = ()
        self.edge_children = ()
        self.edge_probabilities = ()
        self.source_probabilities = ()
        self._stay_columns = ()
        mapped, self._mmap = self._mmap, None
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:  # exported views outlive us; gc unmaps
                pass

    def __enter__(self) -> "MappedCTGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"MappedCTGraph(duration={self.duration}, "
                f"nodes={self.num_nodes}, edges={self.num_edges}, "
                f"locations={len(self.location_names)}, "
                f"backing={self.backing!r})")


def _bounds_error(path, detail: str) -> StoreFormatError:
    return StoreFormatError(f"{path}: {detail}")


# ----------------------------------------------------------------------
# the rfid-ctg/ckpt@1 stream-checkpoint codec
# ----------------------------------------------------------------------
#: magic, version, flags, num_names, num_levels, payload_length,
#: checksum, 4 reserved bytes.
_CKPT_HEADER = struct.Struct("<8sIIIIQI4x")
#: One candidate-row entry: (location id, float64 probability).
_CKPT_ROW_ENTRY = struct.Struct("<Id")
#: One frontier-state head: (location id, stay or -1, departure count).
_CKPT_STATE_HEAD = struct.Struct("<IiI")
#: One TL departure: (absolute timestep, location id).
_CKPT_DEPARTURE = struct.Struct("<qI")
_CKPT_MASS = struct.Struct("<d")

#: One serialised frontier state:
#: ``(location_id, stay_or_None, ((time, location_id), ...), mass)``.
CheckpointState = Tuple[int, Optional[int], Tuple[Tuple[int, int], ...],
                        float]


@dataclasses.dataclass(frozen=True)
class CheckpointPayload:
    """The decoded content of one ``rfid-ctg/ckpt@1`` file.

    ``rows[i]`` is retained level ``i``'s candidate distribution as
    ``(location_id, probability)`` pairs in original dict-insertion
    order; ``frontiers[i]`` is the forward frontier *after* ingesting
    that level, as :data:`CheckpointState` records, also in insertion
    order.  Location ids index ``location_names``; ``meta`` is the JSON
    section verbatim (window, base, options, constraints — see
    :mod:`repro.streaming`).  All floats are raw little-endian doubles:
    a decode → re-encode round-trip is bit-identical.
    """

    meta: Dict
    location_names: Tuple[str, ...]
    rows: Tuple[Tuple[Tuple[int, float], ...], ...]
    frontiers: Tuple[Tuple[CheckpointState, ...], ...]


def write_stream_checkpoint(path, *, meta: Dict,
                            location_names: Sequence[str],
                            rows: Sequence[Sequence[Tuple[int, float]]],
                            frontiers: Sequence[Sequence[CheckpointState]],
                            ) -> int:
    """Write one streaming-session checkpoint; returns bytes written.

    The publish is atomic and durable: the payload is staged in a
    dot-prefixed sibling temp file, fsynced, then ``os.replace``d over
    ``path`` — a reader (including a resuming session) either sees the
    previous complete checkpoint or this one, never a torn write.
    Raises :class:`~repro.errors.StoreFormatError` on inconsistent
    inputs (length mismatches, out-of-range location ids).
    """
    if len(rows) != len(frontiers):
        raise StoreFormatError(
            f"checkpoint rows/frontiers disagree "
            f"({len(rows)} vs {len(frontiers)} levels)")
    num_names = len(location_names)

    def checked(lid: int) -> int:
        if not 0 <= lid < num_names:
            raise StoreFormatError(
                f"checkpoint references location id {lid} outside the "
                f"string table (size {num_names})")
        return lid

    chunks: List[bytes] = []
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    chunks.append(_LENGTH.pack(len(meta_blob)))
    chunks.append(meta_blob)
    for name in location_names:
        encoded = name.encode("utf-8")
        chunks.append(_LENGTH.pack(len(encoded)))
        chunks.append(encoded)
    for row, frontier in zip(rows, frontiers):
        chunks.append(_LENGTH.pack(len(row)))
        for lid, probability in row:
            chunks.append(_CKPT_ROW_ENTRY.pack(checked(lid), probability))
        chunks.append(_LENGTH.pack(len(frontier)))
        for lid, stay, departures, mass in frontier:
            chunks.append(_CKPT_STATE_HEAD.pack(
                checked(lid), -1 if stay is None else stay,
                len(departures)))
            for time, departed_lid in departures:
                chunks.append(_CKPT_DEPARTURE.pack(time,
                                                   checked(departed_lid)))
            chunks.append(_CKPT_MASS.pack(mass))
    payload = b"".join(chunks)
    header = _CKPT_HEADER.pack(CKPT_MAGIC, CKPT_VERSION, 0, num_names,
                               len(rows), len(payload),
                               zlib.crc32(payload))
    directory = os.path.dirname(os.fspath(path)) or "."
    temp = os.path.join(
        directory, f".{os.path.basename(os.fspath(path))}.{os.getpid()}.tmp")
    try:
        with open(temp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp, path)
    except BaseException:
        if os.path.exists(temp):
            os.unlink(temp)
        raise
    return len(header) + len(payload)


class _Cursor:
    """Sequential struct reads over one buffer with bounds checking."""

    def __init__(self, path, buffer: bytes, position: int) -> None:
        self._path = path
        self._buffer = buffer
        self.position = position

    def unpack(self, codec: struct.Struct) -> tuple:
        end = self.position + codec.size
        if end > len(self._buffer):
            raise _bounds_error(self._path, "truncated checkpoint payload")
        values = codec.unpack_from(self._buffer, self.position)
        self.position = end
        return values

    def take(self, count: int) -> bytes:
        end = self.position + count
        if end > len(self._buffer):
            raise _bounds_error(self._path, "truncated checkpoint payload")
        data = self._buffer[self.position:end]
        self.position = end
        return data


def read_stream_checkpoint(path) -> CheckpointPayload:
    """Decode a ``rfid-ctg/ckpt@1`` file written by
    :func:`write_stream_checkpoint`.

    The payload CRC-32 is always verified (checkpoints are small and a
    silently bit-rotted one would corrupt a resumed stream), raising
    :class:`~repro.errors.StoreChecksumError` on a mismatch;
    structural defects raise :class:`~repro.errors.StoreFormatError`.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _CKPT_HEADER.size:
        raise _bounds_error(path, f"truncated header ({len(data)} of "
                                  f"{_CKPT_HEADER.size} bytes)")
    (magic, version, _flags, num_names, num_levels, payload_length,
     checksum) = _CKPT_HEADER.unpack_from(data, 0)
    if magic != CKPT_MAGIC:
        raise _bounds_error(path, "not a stream checkpoint (bad magic)")
    if version != CKPT_VERSION:
        raise _bounds_error(
            path, f"unsupported checkpoint version {version} "
                  f"(this build reads version {CKPT_VERSION})")
    if len(data) < _CKPT_HEADER.size + payload_length:
        raise _bounds_error(
            path, f"truncated payload (file is {len(data)} bytes, header "
                  f"promises {_CKPT_HEADER.size + payload_length})")
    payload = data[_CKPT_HEADER.size:_CKPT_HEADER.size + payload_length]
    actual = zlib.crc32(payload)
    if actual != checksum:
        raise StoreChecksumError(
            f"{path}: checkpoint CRC-32 mismatch (recorded "
            f"{checksum:#010x}, computed {actual:#010x}) — the file was "
            "corrupted after it was written")
    cursor = _Cursor(path, payload, 0)
    (meta_length,) = cursor.unpack(_LENGTH)
    try:
        meta = json.loads(cursor.take(meta_length).decode("utf-8"))
    except ValueError as error:
        raise _bounds_error(path, f"malformed meta section ({error})")
    names: List[str] = []
    for _ in range(num_names):
        (length,) = cursor.unpack(_LENGTH)
        names.append(cursor.take(length).decode("utf-8"))
    rows: List[Tuple[Tuple[int, float], ...]] = []
    frontiers: List[Tuple[CheckpointState, ...]] = []
    for _ in range(num_levels):
        (row_count,) = cursor.unpack(_LENGTH)
        rows.append(tuple(cursor.unpack(_CKPT_ROW_ENTRY)
                          for _ in range(row_count)))
        (state_count,) = cursor.unpack(_LENGTH)
        frontier: List[CheckpointState] = []
        for _ in range(state_count):
            lid, stay, num_departures = cursor.unpack(_CKPT_STATE_HEAD)
            departures = tuple(cursor.unpack(_CKPT_DEPARTURE)
                               for _ in range(num_departures))
            (mass,) = cursor.unpack(_CKPT_MASS)
            frontier.append((lid, None if stay == -1 else stay,
                             departures, mass))
        frontiers.append(tuple(frontier))
    num = len(names)
    for level in rows:
        for lid, _probability in level:
            if not 0 <= lid < num:
                raise _bounds_error(
                    path, f"row references unknown location id {lid}")
    for level in frontiers:
        for lid, _stay, departures, _mass in level:
            if not 0 <= lid < num:
                raise _bounds_error(
                    path, f"frontier references unknown location id {lid}")
            for _time, departed_lid in departures:
                if not 0 <= departed_lid < num:
                    raise _bounds_error(
                        path, f"departure references unknown location id "
                              f"{departed_lid}")
    return CheckpointPayload(meta=meta, location_names=tuple(names),
                             rows=tuple(rows), frontiers=tuple(frontiers))


def load_ctg(path, *, mmap: bool = True, verify: bool = False
             ) -> MappedCTGraph:
    """Open a ``.ctg`` file as a :class:`MappedCTGraph` view.

    ``mmap=True`` (default) memory-maps the file and serves every column
    as a zero-copy view — the pages fault in on demand, so a cold load is
    header + section-table parsing, not a full read.  ``mmap=False``
    reads the file into one ``bytes`` object instead (same views, private
    memory).  With numpy importable (and not disabled via
    ``REPRO_NO_NUMPY``) the columns are ``numpy.frombuffer`` slices;
    otherwise ``memoryview.cast`` serves the same data to the pure-python
    query paths.

    Structural validation (magic, version, every section offset/count
    against the payload) always runs and raises
    :class:`~repro.errors.StoreFormatError` on any violation — a
    truncated download fails here, not as an out-of-bounds read later.
    ``verify=True`` additionally checks the payload CRC-32 (reads the
    whole file) and raises :class:`~repro.errors.StoreChecksumError` on a
    mismatch.
    """
    with open(path, "rb") as fh:
        header = fh.read(HEADER_BYTES)
        if len(header) < HEADER_BYTES:
            raise _bounds_error(path, f"truncated header ({len(header)} of "
                                      f"{HEADER_BYTES} bytes)")
        (magic, version, flags, duration, num_names, num_nodes, num_edges,
         table_offset, payload_length, checksum) = _HEADER.unpack(header)
        if magic != CTG_MAGIC:
            raise _bounds_error(path, "not a .ctg file (bad magic)")
        if version != CTG_VERSION:
            raise _bounds_error(
                path, f"unsupported .ctg version {version} "
                      f"(this build reads version {CTG_VERSION})")
        if duration < 1:
            raise _bounds_error(path, "a .ctg graph needs at least one level")
        size = os.fstat(fh.fileno()).st_size
        end = HEADER_BYTES + payload_length
        if size < end:
            raise _bounds_error(
                path, f"truncated payload (file is {size} bytes, header "
                      f"promises {end})")
        mapped: Optional[_mmap.mmap] = None
        if mmap:
            mapped = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
            buffer: Union[_mmap.mmap, bytes] = mapped
        else:
            fh.seek(0)
            buffer = fh.read()
    try:
        return _parse(path, buffer, mapped, "mmap" if mmap else "bytes",
                      flags=flags, duration=duration, num_names=num_names,
                      num_nodes=num_nodes, num_edges=num_edges,
                      table_offset=table_offset, end=end,
                      checksum=checksum, verify=verify)
    except Exception:
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:
                # Column views decoded before the failure still export the
                # buffer; garbage collection unmaps once they die.
                pass
        raise


def _parse(path, buffer, mapped, backing: str, *, flags: int, duration: int,
           num_names: int, num_nodes: int, num_edges: int, table_offset: int,
           end: int, checksum: int, verify: bool) -> MappedCTGraph:
    if verify:
        actual = zlib.crc32(memoryview(buffer)[HEADER_BYTES:end])
        if actual != checksum:
            raise StoreChecksumError(
                f"{path}: payload CRC-32 mismatch (recorded "
                f"{checksum:#010x}, computed {actual:#010x}) — the file "
                "was corrupted after it was written")
    # -- string table --------------------------------------------------
    position = HEADER_BYTES
    names: List[str] = []
    for _ in range(num_names):
        if position + _LENGTH.size > end:
            raise _bounds_error(path, "truncated string table")
        (length,) = _LENGTH.unpack_from(buffer, position)
        position += _LENGTH.size
        if position + length > end:
            raise _bounds_error(path, "truncated string table")
        names.append(bytes(buffer[position:position + length])
                     .decode("utf-8"))
        position += length
    position += -position % _ALIGN
    # -- stats section -------------------------------------------------
    stats = None
    if flags & _FLAG_STATS:
        if position + _LENGTH.size > end:
            raise _bounds_error(path, "truncated stats section")
        (length,) = _LENGTH.unpack_from(buffer, position)
        position += _LENGTH.size
        if position + length > end:
            raise _bounds_error(path, "truncated stats section")
        from repro.core.algorithm import CleaningStats  # lazy

        try:
            fields = json.loads(bytes(buffer[position:position + length]))
            stats = CleaningStats(**fields)
        except (ValueError, TypeError) as error:
            raise _bounds_error(path, f"malformed stats section ({error})")
    # -- section table -------------------------------------------------
    plan = list(_section_plan(duration))
    table_end = table_offset + len(plan) * _SECTION_ENTRY.size
    if not HEADER_BYTES <= table_offset <= table_end <= end:
        raise _bounds_error(path, "section table out of bounds")
    entries = [_SECTION_ENTRY.unpack_from(
                   buffer, table_offset + i * _SECTION_ENTRY.size)
               for i in range(len(plan))]
    use_numpy = kernels.numpy_available()
    if use_numpy:
        numpy = kernels.require_numpy()

        def i32(offset: int, count: int) -> Column:
            return numpy.frombuffer(buffer, dtype="<i4", count=count,
                                    offset=offset)

        def f64(offset: int, count: int) -> Column:
            return numpy.frombuffer(buffer, dtype="<f8", count=count,
                                    offset=offset)
    else:
        def i32(offset: int, count: int) -> Column:
            return _decode_i32_python(buffer, offset, count)

        def f64(offset: int, count: int) -> Column:
            return _decode_f64_python(buffer, offset, count)

    columns: List[Column] = []
    for (kind, tau, itemsize), (offset, count) in zip(plan, entries):
        if not (HEADER_BYTES <= offset
                and offset + count * itemsize <= end):
            raise _bounds_error(
                path, f"section {kind}[{tau}] out of bounds "
                      f"(offset {offset}, count {count})")
        columns.append(i32(offset, count) if itemsize == 4
                       else f64(offset, count))
    locations = tuple(columns[2 * tau] for tau in range(duration))
    stay_columns = tuple(columns[2 * tau + 1] for tau in range(duration))
    base = 2 * duration
    edge_offsets = tuple(columns[base + 3 * tau]
                         for tau in range(duration - 1))
    edge_children = tuple(columns[base + 3 * tau + 1]
                          for tau in range(duration - 1))
    edge_probabilities = tuple(columns[base + 3 * tau + 2]
                               for tau in range(duration - 1))
    source = columns[-1]
    # -- cheap structural cross-checks (full checks: ``validate()``) ---
    if sum(len(level) for level in locations) != num_nodes:
        raise _bounds_error(path, "node sections disagree with the header")
    if sum(len(children) for children in edge_children) != num_edges:
        raise _bounds_error(path, "edge sections disagree with the header")
    if len(source) != len(locations[0]):
        raise _bounds_error(
            path, "source distribution length disagrees with level 0")
    for tau in range(duration):
        if len(stay_columns[tau]) != len(locations[tau]):
            raise _bounds_error(path, f"stay row {tau} length disagrees")
        if tau == duration - 1:
            continue
        if (len(edge_offsets[tau]) != len(locations[tau]) + 1
                or len(edge_children[tau]) != len(edge_probabilities[tau])
                or (len(edge_offsets[tau]) > 0
                    and edge_offsets[tau][-1] != len(edge_children[tau]))):
            raise _bounds_error(path, f"CSR sections of level {tau} "
                                      "are inconsistent")
    return MappedCTGraph(
        path=path, backing=backing, location_names=tuple(names),
        locations=locations, stay_columns=stay_columns,
        edge_offsets=edge_offsets, edge_children=edge_children,
        edge_probabilities=edge_probabilities, source_probabilities=source,
        num_nodes=num_nodes, num_edges=num_edges, stats=stats,
        mapped=mapped)


# ----------------------------------------------------------------------
# shard manifest (rfid-ctg/shards@1)
# ----------------------------------------------------------------------
#: File name of the shard manifest a sharded ``rfid-ctg serve`` writes
#: into its checkpoint directory.
SHARD_MANIFEST = "shards.json"

_SHARD_FORMAT = "rfid-ctg/shards@1"


def read_shard_manifest(directory) -> Optional[int]:
    """The shard count recorded in ``directory``, or ``None`` if no
    manifest exists (the flat single-process layout).

    Raises :class:`~repro.errors.StoreFormatError` when the file exists
    but is not a valid ``rfid-ctg/shards@1`` manifest.
    """
    path = os.path.join(os.fspath(directory), SHARD_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as error:
        raise StoreFormatError(
            f"{path}: unreadable shard manifest ({error})") from None
    shards = payload.get("shards") if isinstance(payload, dict) else None
    if (not isinstance(payload, dict)
            or payload.get("format") != _SHARD_FORMAT
            or not isinstance(shards, int) or shards < 1):
        raise StoreFormatError(
            f"{path}: not a {_SHARD_FORMAT} manifest")
    return shards


def ensure_shard_manifest(directory, shards: int) -> None:
    """Pin ``directory`` to a shard layout, refusing a mismatched one.

    A checkpoint directory written with ``--shards N`` keeps each
    worker's files under ``shard-00`` .. ``shard-NN`` subdirectories; a
    resume under a different shard count would silently find none of
    them.  This helper makes the layout explicit: for ``shards > 1`` it
    records the count in :data:`SHARD_MANIFEST` (creating the directory
    if needed), and for any count it raises
    :class:`~repro.errors.StoreFormatError` when an existing manifest
    disagrees.  A directory without a manifest is the flat ``shards == 1``
    layout, which stays untouched for compatibility with pre-shard
    checkpoints.
    """
    recorded = read_shard_manifest(directory)
    if recorded is not None and recorded != shards:
        raise StoreFormatError(
            f"{os.fspath(directory)}: checkpoint directory was written "
            f"with --shards {recorded}, not --shards {shards}; resume "
            "with the recorded shard count (or point at a fresh "
            "directory)")
    if shards > 1 and recorded is None:
        os.makedirs(os.fspath(directory), exist_ok=True)
        path = os.path.join(os.fspath(directory), SHARD_MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"format": _SHARD_FORMAT, "shards": shards}, handle)
        os.replace(tmp, path)
