"""A content-addressed directory of cleaned ``.ctg`` graphs.

:class:`GraphStore` turns a directory into a cache of cleaning results:
every entry is one ``rfid-ctg/ctg@1`` file named by the SHA-256 of the
*cleaning problem* it answers — the interpreted l-sequence (which folds
the readings and the map prior together), the constraint set, and the
output-affecting options.  Keying by content means repeat cleanings of
the same problem are cache hits whoever asks, across processes and runs:
:meth:`GraphStore.clean` answers a hit with a zero-copy
:class:`~repro.store.format.MappedCTGraph` in microseconds, and a miss
by running Algorithm 1 with ``materialize="store"`` — the engine writes
its arrays straight into the ``.ctg`` layout, the store publishes the
file atomically (temp + ``os.replace``), and the caller gets the same
mmap view a hit would have produced.

The batch runtime composes with this: ``clean_many(..., store=...)``
workers consult the store first, write misses as ``.ctg`` segments, and
ship only the *path* back to the parent, which re-opens the file as an
mmap — no graph ever crosses the process pipe (see
:mod:`repro.runtime.batch`).

What the key covers (and does not): the l-sequence candidates in exact
iteration order with bit-exact (``float.hex``) probabilities, the
constraint set (order-insensitive), ``truncated_stay_policy`` and
``backend`` (conservatively — backends agree to 1e-12 relative, not
always bitwise), plus an optional caller ``extra`` salt (e.g. a map
revision id).  The ``engine`` choice is deliberately *excluded*: the
reference and compact engines are bit-exact by contract, so either may
serve the other's cache entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from pathlib import Path
from typing import Iterator, List, Optional

from repro.errors import ReadingSequenceError, StoreError
from repro.store.format import MappedCTGraph, load_ctg, save_ctg

__all__ = ["GraphStore", "content_key"]

#: The version tag hashed into every key — bump when the key payload (or
#: anything that changes stored bytes for the same payload) changes.
KEY_FORMAT = "rfid-ctg/ctg-key@1"


def content_key(lsequence, constraints, options=None, *,
                extra=None) -> str:
    """The SHA-256 cache key of one cleaning problem (hex, 64 chars).

    ``lsequence`` must be the *interpreted*
    :class:`~repro.core.lsequence.LSequence` — interpretation folds the
    raw readings and the map prior into the candidate distributions, so
    the key captures both.  Candidate iteration order is hashed as-is
    (it determines edge order, hence bit-exact output), and every
    probability is hashed via ``float.hex`` so distinct doubles never
    collide through decimal rounding.
    """
    if options is None:
        from repro.core.algorithm import CleaningOptions  # lazy

        options = CleaningOptions()
    levels: List[List[List[str]]] = []
    for tau in range(lsequence.duration):
        levels.append([[location, float(probability).hex()]
                       for location, probability
                       in lsequence.candidates(tau).items()])
    payload = {
        "format": KEY_FORMAT,
        "levels": levels,
        "constraints": sorted(str(constraint) for constraint in constraints),
        "truncated_stay_policy": options.truncated_stay_policy,
        "backend": options.backend,
        "extra": extra,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class GraphStore:
    """A directory of ``.ctg`` entries keyed by cleaning-problem content.

    The store is a plain directory — every entry is ``<key>.ctg``, keys
    are :func:`content_key` digests, and publication is atomic (written
    to a dot-prefixed temp file, then ``os.replace``d), so concurrent
    writers of the same key race benignly: last replace wins with
    identical bytes.  Instances are small and picklable; the batch
    runtime ships one to every worker.  ``hits``/``misses`` count this
    instance's :meth:`clean` traffic only (each worker counts its own).
    """

    suffix = ".ctg"

    def __init__(self, root, *, mmap: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.mmap = mmap
        self.hits = 0
        self.misses = 0

    # -- keys and paths ------------------------------------------------
    def key_for(self, lsequence, constraints, options=None, *,
                extra=None) -> str:
        return content_key(lsequence, constraints, options, extra=extra)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{self.suffix}"

    def temp_path_for(self, key: str) -> Path:
        """A writer-private staging path (same filesystem, so the
        ``os.replace`` publish is atomic)."""
        return self.root / f".{key}.{os.getpid()}.tmp"

    def commit(self, temp_path, key: str) -> Path:
        """Atomically publish a staged ``.ctg`` file under ``key``."""
        final = self.path_for(key)
        os.replace(temp_path, final)
        return final

    # -- container surface ---------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{self.suffix}"))

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self.root.glob(f"*{self.suffix}"))

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # -- load / store --------------------------------------------------
    def load(self, key: str, *, mmap: Optional[bool] = None
             ) -> MappedCTGraph:
        path = self.path_for(key)
        if not path.exists():
            raise StoreError(
                f"no graph stored under key {key!r} in {self.root}")
        return load_ctg(path, mmap=self.mmap if mmap is None else mmap)

    def put(self, graph, key: str) -> Path:
        """Store a finished graph under ``key`` (atomic publish)."""
        temp = self.temp_path_for(key)
        try:
            save_ctg(graph, temp)
            return self.commit(temp, key)
        except BaseException:
            if temp.exists():
                temp.unlink()
            raise

    # -- the cache-or-clean entry point --------------------------------
    def clean(self, sequence, constraints, *, options=None,
              prior=None, plan=None, extra=None) -> MappedCTGraph:
        """Answer a cleaning problem from the store, cleaning on a miss.

        ``sequence`` is an :class:`~repro.core.lsequence.LSequence` or a
        raw :class:`~repro.core.lsequence.ReadingSequence` (then
        ``prior`` is required, exactly as in the batch runtime).  On a
        miss, Algorithm 1 runs with ``materialize="store"`` — the engine
        writes the ``.ctg`` directly — and the entry is published
        atomically before the view is returned.  ``plan`` threads a
        :class:`~repro.runtime.plan.SharedCleaningPlan` through, sharing
        DU rows across the objects of a batch.
        """
        from repro.core.algorithm import CleaningOptions, build_ct_graph
        from repro.core.lsequence import LSequence, ReadingSequence

        if isinstance(sequence, ReadingSequence):
            if prior is None:
                raise ReadingSequenceError(
                    "a raw ReadingSequence needs prior=... to interpret it")
            lsequence = LSequence.from_readings(sequence, prior)
        else:
            lsequence = sequence
        if options is None:
            options = CleaningOptions()
        key = self.key_for(lsequence, constraints, options, extra=extra)
        path = self.path_for(key)
        if path.exists():
            self.hits += 1
            return self.load(key)
        temp = self.temp_path_for(key)
        try:
            graph = build_ct_graph(
                lsequence, constraints,
                replace(options, materialize="store", output=str(temp)),
                plan=plan)
            graph.close()
            self.commit(temp, key)
        except BaseException:
            if temp.exists():
                temp.unlink()
            raise
        self.misses += 1
        return self.load(key)

    def __repr__(self) -> str:
        return (f"GraphStore(root={str(self.root)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
