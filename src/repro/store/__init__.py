"""Persistent binary storage for cleaned ct-graphs.

The storage tier of the pipeline (ingest -> clean -> **store** -> query):

* :mod:`repro.store.format` — the ``rfid-ctg/ctg@1`` single-file binary
  codec: :func:`write_ctg`/:func:`save_ctg` write a graph's columns as
  little-endian int32/float64 sections behind a checksummed header, and
  :func:`load_ctg` serves them back as a zero-copy
  :class:`MappedCTGraph` view over one ``mmap``, ready for
  :class:`~repro.queries.session.QuerySession` without deserialisation.
* :mod:`repro.store.graphstore` — :class:`GraphStore`, a
  content-addressed directory of entries keyed by the SHA-256 of the
  cleaning problem (:func:`content_key`), so repeat cleanings are cache
  hits; ``clean_many(..., store=...)`` builds on it to keep graphs off
  the worker pipe entirely.

The engines write the format natively via
``CleaningOptions(materialize="store", output=...)`` — see
``docs/store.md`` for the format spec, the mmap contract and the cache
keying rules, and ``benchmarks/bench_store.py`` for the numbers.
"""

from repro.errors import StoreChecksumError, StoreError, StoreFormatError
from repro.store.format import (
    CTG_MAGIC,
    CTG_VERSION,
    MappedCTGraph,
    load_ctg,
    save_ctg,
    write_ctg,
)
from repro.store.graphstore import GraphStore, content_key

__all__ = [
    "CTG_MAGIC",
    "CTG_VERSION",
    "GraphStore",
    "MappedCTGraph",
    "StoreChecksumError",
    "StoreError",
    "StoreFormatError",
    "content_key",
    "load_ctg",
    "save_ctg",
    "write_ctg",
]
