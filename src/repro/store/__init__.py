"""Persistent binary storage for cleaned ct-graphs.

The storage tier of the pipeline (ingest -> clean -> **store** -> query):

* :mod:`repro.store.format` — the ``rfid-ctg/ctg@1`` single-file binary
  codec: :func:`write_ctg`/:func:`save_ctg` write a graph's columns as
  little-endian int32/float64 sections behind a checksummed header, and
  :func:`load_ctg` serves them back as a zero-copy
  :class:`MappedCTGraph` view over one ``mmap``, ready for
  :class:`~repro.queries.session.QuerySession` without deserialisation.
* :mod:`repro.store.graphstore` — :class:`GraphStore`, a
  content-addressed directory of entries keyed by the SHA-256 of the
  cleaning problem (:func:`content_key`), so repeat cleanings are cache
  hits; ``clean_many(..., store=...)`` builds on it to keep graphs off
  the worker pipe entirely.

:mod:`repro.store.format` also owns the sibling ``rfid-ctg/ckpt@1``
stream-checkpoint codec (:func:`write_stream_checkpoint` /
:func:`read_stream_checkpoint`) used by
:class:`repro.streaming.StreamingCleaner` for durable kill/resume.

The engines write the format natively via
``CleaningOptions(materialize="store", output=...)`` — see
``docs/store.md`` for the format spec, the mmap contract and the cache
keying rules, and ``benchmarks/bench_store.py`` for the numbers.
"""

from repro.errors import StoreChecksumError, StoreError, StoreFormatError
from repro.store.format import (
    CKPT_MAGIC,
    CKPT_VERSION,
    CTG_MAGIC,
    CTG_VERSION,
    CheckpointPayload,
    MappedCTGraph,
    load_ctg,
    read_stream_checkpoint,
    save_ctg,
    write_ctg,
    write_stream_checkpoint,
)
from repro.store.graphstore import GraphStore, content_key

__all__ = [
    "CKPT_MAGIC",
    "CKPT_VERSION",
    "CTG_MAGIC",
    "CTG_VERSION",
    "CheckpointPayload",
    "GraphStore",
    "MappedCTGraph",
    "StoreChecksumError",
    "StoreError",
    "StoreFormatError",
    "content_key",
    "load_ctg",
    "read_stream_checkpoint",
    "save_ctg",
    "write_ctg",
    "write_stream_checkpoint",
]
