"""Automatic inference of integrity constraints from a map (Section 6.3).

The paper stresses (footnote 1) that DU and TT constraints do not require
domain expertise: DU constraints follow from the map's structure, TT
constraints from minimum walking distances and the maximum speed of the
monitored objects.  This package implements that inference; the only inputs
are the :class:`~repro.mapmodel.building.Building` and a motility profile.
"""

from repro.inference.infer import (
    MotilityProfile,
    infer_constraints,
    infer_du_constraints,
    infer_lt_constraints,
    infer_tt_constraints,
)

__all__ = [
    "MotilityProfile",
    "infer_constraints",
    "infer_du_constraints",
    "infer_tt_constraints",
    "infer_lt_constraints",
]
