"""Deriving DU, TT and LT constraints from a building map.

The three generators mirror Section 6.3 of the paper:

* **DU** — one ``unreachable(l1, l2)`` per ordered pair of distinct
  locations not directly connected by a door;
* **TT** — one ``travelingTime(l1, l2, v)`` per ordered pair of locations
  that are connected but not directly connected, with
  ``v = ceil(min_walking_distance(l1, l2) / max_speed)`` (constraints whose
  ``v <= 1`` are vacuous and skipped);
* **LT** — one ``latency(l, d)`` per non-transit location (the paper
  excludes corridors because objects legitimately cross them quickly).

Pairs in different connected components need no TT constraint: every path
between them would contain a DU-forbidden step already.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.errors import ConstraintError
from repro.mapmodel.building import Building
from repro.mapmodel.distances import WalkingDistances

__all__ = [
    "MotilityProfile",
    "infer_du_constraints",
    "infer_tt_constraints",
    "infer_lt_constraints",
    "infer_constraints",
]

#: The paper's experimental parameters: people walking inside a building.
DEFAULT_MAX_SPEED = 2.0       # metres per timestep (= 2 m/s at 1 s steps)
DEFAULT_MIN_STAY = 5          # timesteps (= 5 s at 1 s steps)


@dataclass(frozen=True)
class MotilityProfile:
    """What we know about how the monitored objects move.

    ``max_speed`` is in metres per timestep; ``min_stay`` is the latency
    bound (in timesteps) attached to every non-transit location.
    """

    max_speed: float = DEFAULT_MAX_SPEED
    min_stay: int = DEFAULT_MIN_STAY

    def __post_init__(self) -> None:
        if self.max_speed <= 0:
            raise ConstraintError(f"max_speed must be positive, got {self.max_speed}")
        if self.min_stay < 1:
            raise ConstraintError(f"min_stay must be >= 1, got {self.min_stay}")


def infer_du_constraints(building: Building) -> List[Unreachable]:
    """All DU constraints implied by the map."""
    constraints: List[Unreachable] = []
    names = building.location_names
    for loc_a in names:
        adjacent = set(building.neighbors(loc_a))
        for loc_b in names:
            if loc_b != loc_a and loc_b not in adjacent:
                constraints.append(Unreachable(loc_a, loc_b))
    return constraints


def infer_tt_constraints(building: Building, max_speed: float = DEFAULT_MAX_SPEED,
                         distances: Optional[WalkingDistances] = None,
                         ) -> List[TravelingTime]:
    """All non-vacuous TT constraints implied by the map and ``max_speed``.

    ``distances`` may be passed in to reuse a precomputed table.
    """
    if distances is None:
        distances = WalkingDistances(building)
    constraints: List[TravelingTime] = []
    connected = building.connected_location_pairs()
    for loc_a, loc_b in sorted(connected):
        if building.are_adjacent(loc_a, loc_b):
            continue
        steps = distances.min_traveling_time(loc_a, loc_b, max_speed)
        if steps > 1:
            constraints.append(TravelingTime(loc_a, loc_b, steps))
    return constraints


def infer_lt_constraints(building: Building, min_stay: int = DEFAULT_MIN_STAY,
                         ) -> List[Latency]:
    """One latency constraint per non-transit location (none if vacuous)."""
    if min_stay <= 1:
        return []
    return [Latency(location.name, min_stay)
            for location in building.locations if not location.is_transit]


def infer_constraints(building: Building,
                      profile: MotilityProfile = MotilityProfile(),
                      kinds: Sequence[str] = ("DU", "LT", "TT"),
                      distances: Optional[WalkingDistances] = None,
                      ) -> ConstraintSet:
    """The full inferred constraint set, restricted to the given ``kinds``.

    ``kinds`` is any subset of ``{"DU", "LT", "TT"}`` — the experiment
    harness uses this to build the paper's CTG(DU), CTG(DU, LT) and
    CTG(DU, LT, TT) configurations.
    """
    known = {"DU", "LT", "TT"}
    requested = set(kinds)
    unknown = requested - known
    if unknown:
        raise ConstraintError(f"unknown constraint kinds: {sorted(unknown)}")
    constraints: List = []
    if "DU" in requested:
        constraints.extend(infer_du_constraints(building))
    if "LT" in requested:
        constraints.extend(infer_lt_constraints(building, profile.min_stay))
    if "TT" in requested:
        constraints.extend(infer_tt_constraints(building, profile.max_speed,
                                                distances=distances))
    return ConstraintSet(constraints)
