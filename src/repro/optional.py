"""Optional-dependency placeholders (the ``repro[numpy]`` extra).

The cleaning core — l-sequences, constraints, both engines, the flat
query layer — is dependency-free.  The simulation, calibration and
experiment layers use numpy when present; since the kernels PR numpy is
an *optional extra*, so those modules bind their ``np`` through::

    try:
        import numpy as np
    except ImportError:  # pragma: no cover - no-numpy environments
        from repro.optional import missing_dependency
        np = missing_dependency("numpy", "repro[numpy]")

Importing the package then never requires numpy — only *calling* into a
numpy-backed feature does, and the failure is a typed
:class:`~repro.errors.ReproError` naming the extra to install instead of
an ``AttributeError`` on ``None``.  (The level-sweep kernels in
:mod:`repro.core.kernels` go further: they *fall back* to the pure
python oracle rather than raising, because there the python path is a
complete implementation, not a degraded one.)
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError

__all__ = ["MissingDependencyProxy", "missing_dependency"]


class MissingDependencyProxy:
    """Stands in for an optional module that failed to import.

    Falsy, and every attribute access raises :class:`ReproError` naming
    the feature's extra — so the import site stays a one-liner and the
    error surfaces exactly where the dependency is first *used*.
    """

    __slots__ = ("_module", "_extra")

    def __init__(self, module: str, extra: str) -> None:
        self._module = module
        self._extra = extra

    def __getattr__(self, name: str) -> Any:
        raise ReproError(
            f"the optional dependency {self._module!r} is not installed "
            f"(needed for {self._module}.{name}); install the "
            f"{self._extra} extra to enable this feature")

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (f"MissingDependencyProxy(module={self._module!r}, "
                f"extra={self._extra!r})")


def missing_dependency(module: str, extra: str) -> MissingDependencyProxy:
    """A placeholder for ``module``, installable via ``extra``."""
    return MissingDependencyProxy(module, extra)
