"""The lint finding record and suppression-comment parsing."""

from __future__ import annotations

from typing import Dict, NamedTuple, Set, Tuple

__all__ = [
    "LEGACY_CODES",
    "LEGACY_SUPPRESSION_MARK",
    "LintFinding",
    "SUPPRESSION_MARK",
    "suppressed_lines",
]

#: A trailing ``# lint-ok: <CODE>[, <CODE>...]`` comment silences those
#: findings on its line (used sparingly, and visible in review).
SUPPRESSION_MARK = "# lint-ok:"

#: The historical ``tools/check_invariants.py`` mark, still honoured so
#: existing suppressions keep working under the promoted linter.
LEGACY_SUPPRESSION_MARK = "# invariant-ok:"

#: Historical INV rule codes mapped to their promoted L codes.  Both the
#: suppression parser and the ``--select`` option accept either spelling.
LEGACY_CODES: Dict[str, str] = {
    "INV001": "L001",
    "INV002": "L002",
    "INV003": "L003",
}


class LintFinding(NamedTuple):
    """One rule violation at one source line."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line,
                "code": self.code, "message": self.message}


def suppressed_lines(source: str) -> Set[Tuple[int, str]]:
    """The ``(line, code)`` pairs silenced by suppression comments.

    Codes are comma- or space-separated, case-insensitive, and legacy INV
    codes are normalised to their L equivalents.
    """
    suppressed: Set[Tuple[int, str]] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for mark in (SUPPRESSION_MARK, LEGACY_SUPPRESSION_MARK):
            at = line.find(mark)
            if at < 0:
                continue
            for raw in line[at + len(mark):].replace(",", " ").split():
                code = raw.strip().upper()
                suppressed.add((lineno, LEGACY_CODES.get(code, code)))
    return suppressed
