"""Code-level static analysis: the engine-invariant linter.

Tier 2 of the repo's static-analysis stack (tier 1 is
:mod:`repro.analysis`, which analyses the *data* — constraints and
readings; this package analyses the *code*).  A pluggable AST-visitor
framework (:mod:`repro.lint.registry`) runs the registered rules
L001-L009 (:mod:`repro.lint.rules`) over source trees: invariants
ruff/mypy cannot express — interning immutability, worker-boundary
picklability, bit-exact determinism, ``python -O`` survival, CSR index
discipline.  ``docs/lint.md`` is the rule catalog.

Entry points: ``python -m repro.lint``, ``rfid-ctg lint`` and ``make
lint``; ``tools/check_invariants.py`` remains as a deprecated shim over
the L001-L003 subset.  A trailing ``# lint-ok: <CODE>`` comment (or the
historical ``# invariant-ok: INVxxx``) suppresses a finding on its line.
"""

from repro.lint.engine import (
    lint_path,
    lint_source,
    main,
    python_files,
    render_json,
)
from repro.lint.findings import (
    LEGACY_CODES,
    LEGACY_SUPPRESSION_MARK,
    SUPPRESSION_MARK,
    LintFinding,
    suppressed_lines,
)
from repro.lint.registry import LintRule, all_rules, register, rule_codes

__all__ = [
    "LEGACY_CODES",
    "LEGACY_SUPPRESSION_MARK",
    "LintFinding",
    "LintRule",
    "SUPPRESSION_MARK",
    "all_rules",
    "lint_path",
    "lint_source",
    "main",
    "python_files",
    "register",
    "render_json",
    "rule_codes",
    "suppressed_lines",
]
