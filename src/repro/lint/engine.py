"""Running the rules over files, rendering reports, the CLI entry point.

Stdlib only — this is the lint gate that runs even where ruff/mypy are
not installed.  Exit code 0 when clean, 1 when any finding is reported,
2 on usage or parse errors (same contract as the historical
``tools/check_invariants.py``, which now shims onto this module).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import FrozenSet, Iterator, List, Optional, Sequence

from repro.lint.findings import LEGACY_CODES, LintFinding, suppressed_lines
from repro.lint.registry import all_rules, rule_codes
import repro.lint.rules  # noqa: F401  (importing registers the L-rules)

__all__ = ["lint_path", "lint_source", "main", "python_files", "render_json"]


def lint_source(source: str, path: str = "<string>", *,
                select: Optional[FrozenSet[str]] = None) -> List[LintFinding]:
    """Every finding in one source text, suppressions applied, sorted.

    ``select`` restricts the run to those rule codes (``None`` = all).
    Raises :class:`SyntaxError` when the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    findings: List[LintFinding] = []
    for rule in all_rules():
        if select is not None and rule.code not in select:
            continue
        findings.extend(rule.check(tree, path))
    suppressed = suppressed_lines(source)
    findings = [finding for finding in findings
                if (finding.line, finding.code) not in suppressed]
    findings.sort(key=lambda finding: (finding.path, finding.line,
                                       finding.code))
    return findings


def lint_path(path: Path, *,
              select: Optional[FrozenSet[str]] = None) -> List[LintFinding]:
    """Every finding in one file."""
    return lint_source(path.read_text(), str(path), select=select)


def python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories (recursively, sorted) to ``.py`` paths."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def render_json(checked: int, findings: Sequence[LintFinding]) -> str:
    """The machine-readable report (``lint-report/1``)."""
    return json.dumps({
        "format": "lint-report/1",
        "files": checked,
        "summary": {"findings": len(findings)},
        "rules": [{"code": rule.code, "title": rule.title}
                  for rule in all_rules()],
        "findings": [finding.to_dict() for finding in findings],
    }, indent=2, sort_keys=True)


def _parse_select(raw: Optional[str]) -> Optional[FrozenSet[str]]:
    if raw is None:
        return None
    codes = set()
    for token in raw.replace(",", " ").split():
        code = token.strip().upper()
        codes.add(LEGACY_CODES.get(code, code))
    unknown = codes - set(rule_codes())
    if unknown:
        raise ValueError(
            f"unknown lint rule code(s) {sorted(unknown)}; "
            f"registered: {', '.join(rule_codes())}")
    return frozenset(codes)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """The ``python -m repro.lint`` / ``rfid-ctg lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Engine-invariant AST lint (rules L001-L009; see "
                    "docs/lint.md).  Stdlib only.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (recursively)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all; INV001-3 accepted as aliases)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro.lint: no paths given", file=sys.stderr)
        return 2
    try:
        select = _parse_select(args.select)
    except ValueError as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2

    findings: List[LintFinding] = []
    checked = 0
    for path in python_files(args.paths):
        try:
            findings.extend(lint_path(path, select=select))
        except SyntaxError as error:
            print(f"{path}: could not parse: {error}", file=sys.stderr)
            return 2
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            return 2
        checked += 1

    if args.format == "json":
        print(render_json(checked, findings))
        return 1 if findings else 0
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro.lint: {len(findings)} finding(s) in {checked} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"repro.lint: {checked} file(s) clean")
    return 0
