"""The built-in engine-invariant rules, L001-L010.

L001-L003 are the three historical ``tools/check_invariants.py`` rules
(INV001-INV003), promoted unchanged.  L004-L010 machine-check invariants
specific to the cleaning engines that ruff/mypy cannot express: interning
immutability, worker-boundary picklability, bit-exact determinism,
``python -O`` survival, CSR index discipline, aliased mutable
initializers, and ``.ctg`` codec locality.  ``docs/lint.md`` is the
narrative catalog.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.findings import LintFinding
from repro.lint.registry import LintRule, register

__all__ = [
    "CSR_COLUMN_ATTRS",
    "CSR_ACCESSOR_PATHS",
    "CTG_CODEC_PATHS",
    "EXACT_FLOAT_SENTINELS",
    "INTERNED_CACHE_ATTRS",
    "MUTATING_METHODS",
    "POOL_SUBMIT_METHODS",
    "STRUCT_CODEC_CALLS",
]

#: Float literals that may be compared exactly: distribution emptiness and
#: the untouched-survival sentinel.  Everything fractional is suspect.
EXACT_FLOAT_SENTINELS = (0.0, 1.0, -1.0)

#: Private attributes holding interned engine-cache state.  They are
#: shared across every object cleaned under one plan/cache; only their
#: owner (``self``/``cls`` receivers) may write them.
INTERNED_CACHE_ATTRS = frozenset({
    "_states", "_state_ids", "_location_ids", "_location_names",
    "_supports", "_support_ids", "_support_names", "_du_rows",
    "_rows", "_levels", "_advice",
})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "add", "update", "clear", "pop", "popitem", "extend",
    "insert", "remove", "discard", "setdefault",
})

#: Pool-style dispatch methods whose callables cross a pickle boundary.
POOL_SUBMIT_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "apply_async",
    "map_async", "starmap", "starmap_async",
})

#: The CSR column attributes of ``FlatCTGraph``.
CSR_COLUMN_ATTRS = frozenset({
    "edge_offsets", "edge_children", "edge_probabilities",
})

#: Modules allowed to do raw CSR index arithmetic: the flat graph itself,
#: the ndarray view layer that converts its columns, the columnar query
#: layer built around its accessors, the binary store that serialises the
#: columns verbatim, and the whole-column JSON exporter.  Entries ending
#: in ``.py`` match one module exactly; entries ending in ``/`` match a
#: package.
CSR_ACCESSOR_PATHS = ("repro/core/flatgraph.py", "repro/core/kernels.py",
                      "repro/queries/", "repro/store/",
                      "repro/io/graphs.py")


def _is_fractional_float(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value not in EXACT_FLOAT_SENTINELS)


def _is_set_construction(node: ast.expr) -> bool:
    """A set display or a direct ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, ast.Set):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _foreign_interned_attr(node: ast.expr) -> bool:
    """``<receiver>._interned_attr`` where the receiver is not self/cls."""
    if not (isinstance(node, ast.Attribute)
            and node.attr in INTERNED_CACHE_ATTRS):
        return False
    value = node.value
    return not (isinstance(value, ast.Name)
                and value.id in ("self", "cls"))


@register
class FloatEqualityRule(LintRule):
    code = "L001"
    title = "no ==/!= against fractional float literals"
    rationale = (
        "Probabilities are accumulated by multiplication and fsum; exact "
        "equality against values like 0.5 is a float-comparison bug.  The "
        "sentinels 0.0/1.0/-1.0 test provenance, not arithmetic, and are "
        "allowed.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_fractional_float(left) or _is_fractional_float(right):
                    yield self.finding(
                        path, node.lineno,
                        "exact ==/!= against a fractional float literal; "
                        "use math.isclose / an explicit tolerance")
                    break


@register
class BareExceptRule(LintRule):
    code = "L002"
    title = "no bare except:"
    rationale = (
        "A bare except swallows KeyboardInterrupt/SystemExit; catch "
        "Exception or the precise repro.errors subtype instead.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    path, node.lineno,
                    "bare `except:`; catch Exception or a repro.errors "
                    "type")


@register
class FrozenMutationRule(LintRule):
    code = "L003"
    title = "no object.__setattr__ outside __post_init__"
    rationale = (
        "The frozen dataclasses (constraints, readings, diagnostics) are "
        "hashed and shared; mutating one after construction invalidates "
        "every index built over it.  __post_init__ normalisation is the "
        "sanctioned exception.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        findings: List[LintFinding] = []
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[str] = []

            def _function(self, node: ast.AST, name: str) -> None:
                self.stack.append(name)
                self.generic_visit(node)
                self.stack.pop()

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._function(node, node.name)

            def visit_AsyncFunctionDef(self,
                                       node: ast.AsyncFunctionDef) -> None:
                self._function(node, node.name)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "__setattr__"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "object"
                        and "__post_init__" not in self.stack):
                    findings.append(rule.finding(
                        path, node.lineno,
                        "object.__setattr__ outside __post_init__ mutates "
                        "a frozen dataclass after construction"))
                self.generic_visit(node)

        Visitor().visit(tree)
        return iter(findings)


@register
class InternedMutationRule(LintRule):
    code = "L004"
    title = "no mutation of interned engine-cache state from outside"
    rationale = (
        "EngineCache/SharedCleaningPlan intern states, supports and "
        "transition rows shared by every object of a batch; a write "
        "through a non-owner reference (cache._rows[k] = ..., "
        "plan._du_rows.update(...)) silently corrupts every other "
        "cleaning.  Owners mutate through self/cls only.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and _foreign_interned_attr(target.value)):
                        attribute = target.value
                    elif (isinstance(target, ast.Attribute)
                          and _foreign_interned_attr(target)):
                        attribute = target
                    else:
                        continue
                    yield self.finding(
                        path, node.lineno,
                        f"write to interned cache attribute "
                        f"`{attribute.attr}` through a non-owner "
                        f"reference; interned engine state is shared "
                        f"across the whole batch")
                    break
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Attribute)
                        and _foreign_interned_attr(func.value)):
                    yield self.finding(
                        path, node.lineno,
                        f"`.{func.attr}()` on interned cache attribute "
                        f"`{func.value.attr}` through a non-owner "
                        f"reference; interned engine state is shared "
                        f"across the whole batch")


@register
class SetIterationRule(LintRule):
    code = "L005"
    title = "no iteration over freshly built sets"
    rationale = (
        "Set iteration order is hash-seed-dependent; iterating a set "
        "display or set()/frozenset() call in a result-building path "
        "makes output ordering (and float accumulation order) "
        "nondeterministic.  Membership tests are fine; sort first "
        "(sorted(...)) when iterating.")

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.For) and _is_set_construction(node.iter):
                yield self.finding(
                    path, node.lineno,
                    "for-loop over a freshly built set iterates in "
                    "hash order; sort first (sorted(...))")
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_construction(generator.iter):
                        yield self.finding(
                            path, node.lineno,
                            "comprehension over a freshly built set "
                            "iterates in hash order; sort first "
                            "(sorted(...))")
                        break
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in self._MATERIALIZERS
                  and node.args
                  and _is_set_construction(node.args[0])):
                yield self.finding(
                    path, node.lineno,
                    f"{node.func.id}() over a freshly built set "
                    f"materialises hash order; sort first (sorted(...))")


@register
class LambdaToPoolRule(LintRule):
    code = "L006"
    title = "no lambdas across the worker boundary"
    rationale = (
        "The batch runtime ships callables to worker processes by "
        "pickling; lambdas (and other unpicklable locals) fail only at "
        "runtime, inside the pool, with an opaque error.  Pass a named "
        "module-level function instead.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in POOL_SUBMIT_METHODS):
                continue
            arguments = list(node.args)
            arguments.extend(keyword.value for keyword in node.keywords)
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        path, node.lineno,
                        f"lambda passed to `.{node.func.attr}()` cannot "
                        f"be pickled across the worker boundary; use a "
                        f"named module-level function")
                    break


@register
class AssertStatementRule(LintRule):
    code = "L007"
    title = "no assert-only invariants in library code"
    rationale = (
        "`assert` statements vanish under `python -O`, so an invariant "
        "guarded only by assert is unguarded in optimised runs.  Raise a "
        "repro.errors type (GraphInvariantError, ...) instead; asserts "
        "belong in tests, which pytest never runs optimised.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    path, node.lineno,
                    "assert vanishes under `python -O`; raise a "
                    "repro.errors exception for library invariants")


@register
class CsrIndexingRule(LintRule):
    code = "L008"
    title = "no raw CSR column subscripts outside the accessor layer"
    rationale = (
        "FlatCTGraph's edge_offsets/edge_children/edge_probabilities "
        "columns follow the CSR convention (level-relative child ids, "
        "offset fenceposts); ad-hoc subscript arithmetic outside "
        "repro/core/flatgraph.py and repro/queries/ tends to get the "
        "convention subtly wrong.  Go through the accessor helpers "
        "(node_edges, level_slice, ...) instead.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        normalized = path.replace("\\", "/")
        for part in CSR_ACCESSOR_PATHS:
            if part.endswith(".py"):
                if normalized.endswith(part):
                    return
            elif part in normalized:
                return
        for node in ast.walk(tree):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr in CSR_COLUMN_ATTRS):
                yield self.finding(
                    path, node.lineno,
                    f"raw subscript of CSR column `{node.value.attr}` "
                    f"outside the accessor layer; use the FlatCTGraph/"
                    f"query-session helpers")


_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_element(node: ast.expr) -> bool:
    """An element whose identity would be shared by sequence repetition."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS)


@register
class MultipliedMutableRule(LintRule):
    code = "L009"
    title = "no multiplied mutable-literal initializers"
    rationale = (
        "`[[]] * n` repeats the *same* list object n times, so a write "
        "through one slot appears in every slot — the aliasing stays "
        "latent until the first in-place mutation (the QuerySession "
        "suffix-row bug).  Repetition of immutable elements "
        "(`[0.0] * n`) is fine; build mutable rows with a comprehension "
        "(`[[] for _ in range(n)]`).")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mult)):
                continue
            for operand in (node.left, node.right):
                if (isinstance(operand, (ast.List, ast.Tuple, ast.Set))
                        and any(_is_mutable_element(element)
                                for element in operand.elts)):
                    yield self.finding(
                        path, node.lineno,
                        "sequence repetition of a mutable literal aliases "
                        "one object into every slot; use a comprehension "
                        "([[] for _ in range(n)])")
                    break


#: ``struct``-module call names that do raw byte packing/unpacking.
STRUCT_CODEC_CALLS = frozenset({
    "pack", "unpack", "pack_into", "unpack_from", "iter_unpack",
    "calcsize", "Struct",
})

#: Modules allowed to speak the raw ``.ctg`` byte layout: the store
#: package owns the header/section codec.  Same matching convention as
#: :data:`CSR_ACCESSOR_PATHS` (``.py`` = exact module, ``/`` = package).
CTG_CODEC_PATHS = ("repro/store/",)


def _is_struct_codec_call(node: ast.expr) -> bool:
    """``struct.pack(...)``-style call, or a call on a ``struct.Struct``
    constructed inline (``struct.Struct("<Q").unpack(...)``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (isinstance(func, ast.Attribute)
            and func.attr in STRUCT_CODEC_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id == "struct")


@register
class CtgCodecRule(LintRule):
    code = "L010"
    title = "no raw .ctg byte codec outside repro/store/"
    rationale = (
        "The `rfid-ctg/ctg@1` layout (header struct, section offsets, "
        "alignment) lives in repro/store/format.py and nowhere else; "
        "`struct.pack`/`unpack` + hand-rolled offset arithmetic in other "
        "modules forks the format and rots silently when the version "
        "bumps.  Read graphs through repro.store.load_ctg / GraphStore, "
        "write them through write_ctg/save_ctg.")

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        normalized = path.replace("\\", "/")
        for part in CTG_CODEC_PATHS:
            if part.endswith(".py"):
                if normalized.endswith(part):
                    return
            elif part in normalized:
                return
        for node in ast.walk(tree):
            if _is_struct_codec_call(node):
                yield self.finding(
                    path, node.lineno,
                    f"raw struct.{node.func.attr} call outside "
                    f"repro/store/; go through the repro.store codec "
                    f"(load_ctg/write_ctg) instead of reimplementing "
                    f"the .ctg byte layout")
