"""The pluggable rule registry.

A rule is a class with a stable ``code``, a one-line ``title``, a
``rationale`` paragraph (rendered by ``--list-rules`` and docs), and a
:meth:`LintRule.check` generator over a parsed module.  Decorating it
with :func:`register` adds one instance to the global registry; the
engine runs every registered rule (or the ``--select`` subset) over each
file.  Registration is import-time — :mod:`repro.lint.rules` registers
the built-in L-rules — and codes must be unique.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple, Type

from repro.lint.findings import LintFinding

__all__ = ["LintRule", "all_rules", "register", "rule_codes"]


class LintRule:
    """Base class for one registered rule."""

    #: Stable rule code (``L001``...), the suppression/selection handle.
    code: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the rule exists — the invariant it machine-checks.
    rationale: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[LintFinding]:
        """Yield every violation in one parsed module."""
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> LintFinding:
        return LintFinding(path, line, self.code, message)


_REGISTRY: Dict[str, LintRule] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"lint rule {cls.__name__} declares no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate lint rule code {rule.code!r} "
                         f"({cls.__name__})")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, in code order."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rule_codes() -> Tuple[str, ...]:
    """The registered codes, sorted."""
    return tuple(sorted(_REGISTRY))
