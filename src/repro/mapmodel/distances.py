"""Minimum walking distances between locations (the basis of TT constraints).

The paper derives traveling-time constraints from "the minimum walking
distance between L1 and L2, and the maximum speed of a person" (Section 6.3).
This module computes those minimum distances on the *door graph*:

* every door contributes two nodes, one per side, joined by an edge of the
  door's walking ``length`` (0 for ordinary doors, the flight length for
  staircase doors);
* within each location, all door sides facing that location are pairwise
  joined by the Euclidean distance between the door points (the footprints
  are convex rectangles, so the straight line between two doors of the same
  room is walkable).

The minimum distance from location ``l1`` to ``l2`` is the shortest path
from any door side facing ``l1`` to any door side facing ``l2`` — an object
may start arbitrarily close to one of its room's doors, so no intra-room
start-up distance is added.  Adjacent locations therefore get distance 0,
which is consistent with the paper generating TT constraints only for pairs
*connected but not directly connected*.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.errors import MapModelError, UnknownLocationError
from repro.mapmodel.building import Building

__all__ = ["WalkingDistances"]


class WalkingDistances:
    """All-pairs minimum walking distances over a building's door graph."""

    def __init__(self, building: Building) -> None:
        self.building = building
        self._graph = nx.Graph()
        self._sides: Dict[str, list] = {name: [] for name in building.location_names}
        self._build_graph()
        self._distances: Dict[str, Dict[str, float]] = {}
        self._compute_all_pairs()

    def _build_graph(self) -> None:
        for door_id, door in enumerate(self.building.doors):
            side_a = (door_id, door.loc_a)
            side_b = (door_id, door.loc_b)
            self._graph.add_edge(side_a, side_b, weight=door.length)
            self._sides[door.loc_a].append(side_a)
            self._sides[door.loc_b].append(side_b)
        # Intra-location edges: straight-line walks between doors of the room.
        for name in self.building.location_names:
            sides = self._sides[name]
            for i in range(len(sides)):
                for j in range(i + 1, len(sides)):
                    door_i = self.building.doors[sides[i][0]]
                    door_j = self.building.doors[sides[j][0]]
                    length = door_i.point_in(name).distance_to(door_j.point_in(name))
                    self._graph.add_edge(sides[i], sides[j], weight=length)

    def _compute_all_pairs(self) -> None:
        for name in self.building.location_names:
            sources = self._sides[name]
            row: Dict[str, float] = {}
            if sources:
                lengths = nx.multi_source_dijkstra_path_length(
                    self._graph, sources, weight="weight")
                for other in self.building.location_names:
                    if other == name:
                        row[other] = 0.0
                        continue
                    best = math.inf
                    for side in self._sides[other]:
                        value = lengths.get(side)
                        if value is not None and value < best:
                            best = value
                    row[other] = best
            else:
                for other in self.building.location_names:
                    row[other] = 0.0 if other == name else math.inf
            self._distances[name] = row

    # ------------------------------------------------------------------
    def distance(self, loc_a: str, loc_b: str) -> float:
        """Minimum walking distance in metres (``inf`` if unreachable)."""
        try:
            return self._distances[loc_a][loc_b]
        except KeyError:
            missing = loc_a if loc_a not in self._distances else loc_b
            raise UnknownLocationError(missing) from None

    def is_reachable(self, loc_a: str, loc_b: str) -> bool:
        """Whether ``loc_b`` can be reached from ``loc_a`` at all."""
        return math.isfinite(self.distance(loc_a, loc_b))

    def min_traveling_time(self, loc_a: str, loc_b: str, max_speed: float) -> int:
        """Minimum whole-timestep travel time at ``max_speed`` metres/step.

        This is the ``v`` of a ``travelingTime(loc_a, loc_b, v)`` constraint:
        no object moving at most ``max_speed`` can get from ``loc_a`` to
        ``loc_b`` in fewer than ``v`` timesteps.
        """
        if max_speed <= 0:
            raise MapModelError(f"max_speed must be positive, got {max_speed}")
        dist = self.distance(loc_a, loc_b)
        if math.isinf(dist):
            raise MapModelError(
                f"no path between {loc_a!r} and {loc_b!r}; "
                "use a DU constraint instead of a TT constraint")
        return int(math.ceil(dist / max_speed))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """A copy of the full distance table (location -> location -> metres)."""
        return {a: dict(row) for a, row in self._distances.items()}
