"""Ready-made floor plans and buildings, including the paper's maps.

The paper evaluates on two synthetic buildings, of four (SYN1) and eight
(SYN2) floors, each floor shaped like Fig. 1(a): offices on both sides of a
central corridor, with a staircase connecting consecutive floors.  This
module builds parametric versions of those maps, plus a couple of tiny maps
used throughout the tests and examples.

All dimensions are in metres.  Location names are globally unique and
prefixed with the floor (``F0_R1``, ``F0_corridor``, ...), since the
cleaning machinery identifies locations by name.
"""

from __future__ import annotations

from typing import List

from repro.errors import MapModelError
from repro.geometry import Point, Rect
from repro.mapmodel.building import Building

__all__ = [
    "paper_floor",
    "multi_floor_building",
    "syn1_building",
    "syn2_building",
    "two_room_map",
    "corridor_map",
]

#: Walking length of one staircase flight between consecutive floors.
STAIR_FLIGHT_LENGTH = 4.0

#: Number of office rooms per side of the corridor on a paper-style floor.
_ROOMS_PER_SIDE = 3
_ROOM_WIDTH = 7.0
_ROOM_DEPTH = 4.0
_CORRIDOR_HEIGHT = 2.0
_STAIR_WIDTH = 3.0


def paper_floor(building: Building, floor: int) -> None:
    """Add one Fig. 1(a)-style floor to ``building``.

    The floor consists of a central corridor, three rooms above it, three
    rooms below it, a staircase room at the corridor's east end, a door from
    every room to the corridor, and two room-to-room doors (north side:
    R1-R2; south side: R5-R6) so that some location pairs are connected both
    directly and through the corridor — exactly the structural ambiguity the
    paper's constraints exploit.
    """
    prefix = f"F{floor}_"
    width = _ROOMS_PER_SIDE * _ROOM_WIDTH
    corridor_y0 = _ROOM_DEPTH
    corridor_y1 = _ROOM_DEPTH + _CORRIDOR_HEIGHT

    building.add_location(prefix + "corridor", floor,
                          Rect(0.0, corridor_y0, width, corridor_y1),
                          kind="corridor")

    # North rooms R1..R3 sit above the corridor, south rooms R4..R6 below.
    for i in range(_ROOMS_PER_SIDE):
        x0 = i * _ROOM_WIDTH
        x1 = x0 + _ROOM_WIDTH
        north = prefix + f"R{i + 1}"
        south = prefix + f"R{i + 1 + _ROOMS_PER_SIDE}"
        building.add_location(north, floor,
                              Rect(x0, corridor_y1, x1, corridor_y1 + _ROOM_DEPTH))
        building.add_location(south, floor, Rect(x0, 0.0, x1, _ROOM_DEPTH))
        building.add_door(north, prefix + "corridor")
        building.add_door(south, prefix + "corridor")

    # Room-to-room doors give pairs reachable without entering the corridor.
    building.add_door(prefix + "R1", prefix + "R2")
    building.add_door(prefix + "R5", prefix + "R6")

    # The staircase room at the east end of the corridor.
    stairs = prefix + "stairs"
    building.add_location(
        stairs, floor,
        Rect(width, corridor_y0 - 1.0, width + _STAIR_WIDTH, corridor_y1 + 1.0),
        kind="staircase")
    building.add_door(stairs, prefix + "corridor",
                      point=Point(width, (corridor_y0 + corridor_y1) / 2.0))


def multi_floor_building(num_floors: int, name: str = "building") -> Building:
    """A building of ``num_floors`` paper-style floors linked by staircases."""
    if num_floors < 1:
        raise MapModelError("a building needs at least one floor")
    building = Building(name)
    for floor in range(num_floors):
        paper_floor(building, floor)
    for floor in range(num_floors - 1):
        building.add_door(f"F{floor}_stairs", f"F{floor + 1}_stairs",
                          length=STAIR_FLIGHT_LENGTH)
    building.validate()
    return building


def syn1_building() -> Building:
    """The SYN1 building of the paper: four paper-style floors."""
    return multi_floor_building(4, name="SYN1")


def syn2_building() -> Building:
    """The SYN2 building of the paper: eight paper-style floors."""
    return multi_floor_building(8, name="SYN2")


def two_room_map(room_size: float = 5.0) -> Building:
    """Two adjacent rooms with a connecting door — the smallest useful map."""
    building = Building("two-rooms")
    building.add_location("A", 0, Rect(0.0, 0.0, room_size, room_size))
    building.add_location("B", 0, Rect(room_size, 0.0, 2 * room_size, room_size))
    building.add_door("A", "B")
    building.validate()
    return building


def corridor_map(num_rooms: int = 4, room_size: float = 5.0) -> Building:
    """``num_rooms`` rooms in a row along a corridor, each with one door.

    Rooms are not directly connected to each other, so every room-to-room
    move passes through the corridor — handy for exercising traveling-time
    constraints in tests.
    """
    if num_rooms < 1:
        raise MapModelError("corridor_map needs at least one room")
    building = Building("corridor-map")
    corridor_height = 2.0
    building.add_location(
        "corridor", 0,
        Rect(0.0, room_size, num_rooms * room_size, room_size + corridor_height),
        kind="corridor")
    for i in range(num_rooms):
        name = f"room{i + 1}"
        x0 = i * room_size
        building.add_location(name, 0, Rect(x0, 0.0, x0 + room_size, room_size))
        building.add_door(name, "corridor")
    building.validate()
    return building


def floor_names(building: Building, floor: int) -> List[str]:
    """Names of all locations on ``floor``, in insertion order."""
    return [loc.name for loc in building.locations_on_floor(floor)]
