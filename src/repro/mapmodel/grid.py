"""Grid partitioning of a building into square cells (Section 6.2).

The paper partitions the map into a regular grid of 0.5 m x 0.5 m cells and
expresses both the reader-calibration matrix ``F[r, c]`` and the reading
generator in terms of cells.  :class:`Grid` enumerates, for every floor of a
building, the cells whose centre falls inside some location footprint, and
provides the cell <-> location and point -> cell mappings everything else
needs.

Cells are identified by a dense integer index (0 .. n_cells-1) so that the
calibration matrix can be a plain numpy array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import MapModelError
from repro.geometry import Point
from repro.mapmodel.building import Building

__all__ = ["Cell", "Grid", "DEFAULT_CELL_SIZE"]

#: The paper's grid resolution: half-metre square cells.
DEFAULT_CELL_SIZE = 0.5


@dataclass(frozen=True)
class Cell:
    """One grid cell: its dense index, floor, integer grid coordinates,
    centre point and the location containing it."""

    index: int
    floor: int
    ix: int
    iy: int
    center: Point
    location: str


class Grid:
    """The cell partitioning of a building.

    Only cells whose centre lies inside a location footprint are
    materialised; hallway gaps and the outside of the building produce no
    cells.  Cell ordering is deterministic: by floor, then row-major.
    """

    def __init__(self, building: Building, cell_size: float = DEFAULT_CELL_SIZE) -> None:
        if cell_size <= 0:
            raise MapModelError(f"cell size must be positive, got {cell_size}")
        self.building = building
        self.cell_size = cell_size
        self._cells: List[Cell] = []
        self._by_location: Dict[str, List[int]] = {
            name: [] for name in building.location_names
        }
        # (floor, ix, iy) -> dense index, for point lookups.
        self._by_coords: Dict[Tuple[int, int, int], int] = {}
        self._origins: Dict[int, Tuple[float, float]] = {}
        self._materialize()

    def _materialize(self) -> None:
        size = self.cell_size
        for floor in self.building.floors:
            bounds = self.building.floor_bounds(floor)
            self._origins[floor] = (bounds.x0, bounds.y0)
            nx = int(math.ceil((bounds.x1 - bounds.x0) / size))
            ny = int(math.ceil((bounds.y1 - bounds.y0) / size))
            for iy in range(ny):
                for ix in range(nx):
                    center = Point(bounds.x0 + (ix + 0.5) * size,
                                   bounds.y0 + (iy + 0.5) * size)
                    location = self.building.location_at(floor, center)
                    if location is None:
                        continue
                    index = len(self._cells)
                    cell = Cell(index=index, floor=floor, ix=ix, iy=iy,
                                center=center, location=location)
                    self._cells.append(cell)
                    self._by_location[location].append(index)
                    self._by_coords[(floor, ix, iy)] = index
        if not self._cells:
            raise MapModelError("grid contains no cells; check the building footprints")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def cells(self) -> Sequence[Cell]:
        return self._cells

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def cell(self, index: int) -> Cell:
        return self._cells[index]

    def cells_of(self, location: str) -> Sequence[int]:
        """Dense indices of the cells inside ``location`` (the paper's Cells(l))."""
        if location not in self._by_location:
            raise MapModelError(f"unknown location {location!r}")
        return self._by_location[location]

    def cell_at(self, floor: int, point: Point) -> Optional[Cell]:
        """The cell containing ``point`` on ``floor``, or ``None``.

        A point on the boundary of the floor's footprint can fall into a grid
        square whose centre is outside every location; such points map to
        ``None`` just like points outside the building.
        """
        if floor not in self._origins:
            return None
        ox, oy = self._origins[floor]
        ix = int((point.x - ox) / self.cell_size)
        iy = int((point.y - oy) / self.cell_size)
        index = self._by_coords.get((floor, ix, iy))
        if index is None:
            return None
        return self._cells[index]

    def location_index_array(self) -> np.ndarray:
        """Per-cell location ids (indices into ``building.location_names``).

        This is the vectorisation backbone for the prior model: summing a
        per-cell weight vector by location becomes a ``np.bincount``.
        """
        location_ids = {name: i for i, name in
                        enumerate(self.building.location_names)}
        return np.fromiter((location_ids[cell.location] for cell in self._cells),
                           dtype=np.int64, count=len(self._cells))

    def __repr__(self) -> str:
        return (f"Grid(cells={self.num_cells}, size={self.cell_size}, "
                f"building={self.building.name!r})")
