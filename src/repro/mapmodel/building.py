"""The building model: named locations on floors, connected by doors.

A :class:`Building` is a set of :class:`Location` objects (axis-aligned
rectangular footprints, each on exactly one floor) plus :class:`Door` objects
connecting pairs of locations.  Doors between locations on the same floor sit
on the shared boundary of the two footprints; doors between locations on
different floors model staircase flights and carry an explicit walking
``length``.

The model provides exactly what the rest of the library needs:

* the *adjacency structure* (which pairs of locations are directly
  connected) from which direct-unreachability constraints are inferred;
* the *door graph* with metric edge lengths, from which minimum walking
  distances (and hence traveling-time constraints) are computed;
* per-floor *footprints* that the grid partitioning and the reader
  placement rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import MapModelError, UnknownLocationError
from repro.geometry import Point, Rect, Segment

__all__ = ["Location", "Door", "Building"]

#: Location kinds. ``room`` locations are where objects dwell; ``corridor``
#: and ``staircase`` are transit locations (objects cross them quickly),
#: which is why the paper's experiments attach latency constraints to rooms
#: only (Section 6.3).
LOCATION_KINDS = ("room", "corridor", "staircase")

#: Transit kinds — used by constraint inference (no latency constraint) and
#: by the trajectory generator (short rests).
TRANSIT_KINDS = frozenset({"corridor", "staircase"})


@dataclass(frozen=True)
class Location:
    """A named location: a rectangular footprint on one floor of a building."""

    name: str
    floor: int
    rect: Rect
    kind: str = "room"

    def __post_init__(self) -> None:
        if self.kind not in LOCATION_KINDS:
            raise MapModelError(
                f"location {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {LOCATION_KINDS}"
            )
        if self.rect.area <= 0:
            raise MapModelError(f"location {self.name!r} has a degenerate footprint")

    @property
    def is_transit(self) -> bool:
        """Whether objects merely pass through (corridors and staircases)."""
        return self.kind in TRANSIT_KINDS


@dataclass(frozen=True)
class Door:
    """A connection between two locations.

    For same-floor doors, ``point_a == point_b`` is the door position on the
    shared wall and ``length`` is 0.  For staircase doors (different floors),
    the two points are the flight endpoints in each floor's coordinates and
    ``length`` is the walking length of the flight.
    """

    loc_a: str
    loc_b: str
    point_a: Point
    point_b: Point
    length: float = 0.0

    def __post_init__(self) -> None:
        if self.loc_a == self.loc_b:
            raise MapModelError(f"door connects {self.loc_a!r} to itself")
        if self.length < 0:
            raise MapModelError(f"door {self.loc_a!r}-{self.loc_b!r}: negative length")

    def connects(self, name: str) -> bool:
        """Whether this door opens onto location ``name``."""
        return name in (self.loc_a, self.loc_b)

    def other(self, name: str) -> str:
        """The location on the other side of the door from ``name``."""
        if name == self.loc_a:
            return self.loc_b
        if name == self.loc_b:
            return self.loc_a
        raise MapModelError(f"door {self.loc_a!r}-{self.loc_b!r} does not touch {name!r}")

    def point_in(self, name: str) -> Point:
        """The door endpoint expressed in ``name``'s floor coordinates."""
        if name == self.loc_a:
            return self.point_a
        if name == self.loc_b:
            return self.point_b
        raise MapModelError(f"door {self.loc_a!r}-{self.loc_b!r} does not touch {name!r}")


def _shared_boundary(a: Rect, b: Rect, tol: float = 1e-6) -> Optional[Segment]:
    """The shared boundary segment of two touching rectangles, if any."""
    # Vertical shared wall: a's right edge on b's left edge (or vice versa).
    for x in (a.x1, a.x0):
        if abs(x - b.x0) < tol or abs(x - b.x1) < tol:
            y0 = max(a.y0, b.y0)
            y1 = min(a.y1, b.y1)
            if y1 - y0 > tol:
                return Segment(Point(x, y0), Point(x, y1))
    # Horizontal shared wall.
    for y in (a.y1, a.y0):
        if abs(y - b.y0) < tol or abs(y - b.y1) < tol:
            x0 = max(a.x0, b.x0)
            x1 = min(a.x1, b.x1)
            if x1 - x0 > tol:
                return Segment(Point(x0, y), Point(x1, y))
    return None


class Building:
    """A multi-floor building: locations plus doors.

    Locations are added first, then doors; :meth:`validate` (called lazily by
    consumers, or explicitly) checks structural sanity.  The class is a plain
    container — all probabilistic machinery lives elsewhere.
    """

    def __init__(self, name: str = "building") -> None:
        self.name = name
        self._locations: Dict[str, Location] = {}
        self._order: List[str] = []
        self._doors: List[Door] = []
        self._doors_by_location: Dict[str, List[Door]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_location(self, name: str, floor: int, rect: Rect,
                     kind: str = "room") -> Location:
        """Add a location; returns the created :class:`Location`.

        Raises :class:`MapModelError` on duplicate names or footprints
        overlapping an existing location of the same floor.
        """
        if name in self._locations:
            raise MapModelError(f"duplicate location name: {name!r}")
        location = Location(name=name, floor=floor, rect=rect, kind=kind)
        for existing in self._locations.values():
            if existing.floor == floor and _interiors_overlap(existing.rect, rect):
                raise MapModelError(
                    f"location {name!r} overlaps {existing.name!r} on floor {floor}"
                )
        self._locations[name] = location
        self._order.append(name)
        self._doors_by_location[name] = []
        return location

    def add_door(self, loc_a: str, loc_b: str, *,
                 point: Optional[Point] = None,
                 point_b: Optional[Point] = None,
                 length: float = 0.0) -> Door:
        """Connect two locations with a door.

        For same-floor locations, ``point`` defaults to the midpoint of the
        shared boundary (an error is raised if the footprints do not touch).
        For different-floor locations (a staircase flight), both ``point``
        and ``point_b`` default to the respective footprint centres, and
        ``length`` should be the walking length of the flight.
        """
        a = self.location(loc_a)
        b = self.location(loc_b)
        if a.floor == b.floor:
            if point is None:
                boundary = _shared_boundary(a.rect, b.rect)
                if boundary is None:
                    raise MapModelError(
                        f"locations {loc_a!r} and {loc_b!r} share no boundary; "
                        "pass an explicit door point"
                    )
                point = boundary.midpoint
            door = Door(loc_a, loc_b, point, point_b if point_b is not None else point,
                        length=length)
        else:
            pa = point if point is not None else a.rect.center
            pb = point_b if point_b is not None else b.rect.center
            door = Door(loc_a, loc_b, pa, pb, length=length)
        for existing in self._doors_by_location[loc_a]:
            if existing.connects(loc_b) and existing.point_a == door.point_a:
                raise MapModelError(f"duplicate door between {loc_a!r} and {loc_b!r}")
        self._doors.append(door)
        self._doors_by_location[loc_a].append(door)
        self._doors_by_location[loc_b].append(door)
        return door

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def location_names(self) -> Tuple[str, ...]:
        """All location names, in insertion order."""
        return tuple(self._order)

    @property
    def locations(self) -> Tuple[Location, ...]:
        """All locations, in insertion order."""
        return tuple(self._locations[name] for name in self._order)

    @property
    def doors(self) -> Tuple[Door, ...]:
        return tuple(self._doors)

    @property
    def floors(self) -> Tuple[int, ...]:
        """Sorted distinct floor indices."""
        return tuple(sorted({loc.floor for loc in self._locations.values()}))

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, name: str) -> bool:
        return name in self._locations

    def location(self, name: str) -> Location:
        """The location named ``name`` (raises :class:`UnknownLocationError`)."""
        try:
            return self._locations[name]
        except KeyError:
            raise UnknownLocationError(name) from None

    def locations_on_floor(self, floor: int) -> Tuple[Location, ...]:
        """Locations whose footprint is on ``floor``, in insertion order."""
        return tuple(loc for loc in self.locations if loc.floor == floor)

    def floor_bounds(self, floor: int) -> Rect:
        """The bounding rectangle of all footprints on ``floor``."""
        rects = [loc.rect for loc in self.locations_on_floor(floor)]
        if not rects:
            raise MapModelError(f"building has no locations on floor {floor}")
        return Rect(min(r.x0 for r in rects), min(r.y0 for r in rects),
                    max(r.x1 for r in rects), max(r.y1 for r in rects))

    def doors_of(self, name: str) -> Tuple[Door, ...]:
        """All doors opening onto location ``name``."""
        self.location(name)
        return tuple(self._doors_by_location[name])

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """Locations directly connected to ``name`` through a door (sorted)."""
        return tuple(sorted({door.other(name) for door in self.doors_of(name)}))

    def are_adjacent(self, loc_a: str, loc_b: str) -> bool:
        """Whether a door directly connects the two locations."""
        return loc_b in self.neighbors(loc_a)

    def location_at(self, floor: int, point: Point) -> Optional[str]:
        """The name of the location containing ``point`` on ``floor``.

        Boundary points may belong to two footprints; the first location in
        insertion order wins (tests rely on determinism, not on a specific
        tie-break).  Returns ``None`` for points outside every footprint.
        """
        for loc in self.locations:
            if loc.floor == floor and loc.rect.contains(point):
                return loc.name
        return None

    def walls_between(self, floor: int, a: Point, b: Point) -> int:
        """How many location boundaries the open segment ``a``–``b`` crosses.

        Used by the reader model to attenuate radio signals through walls.
        Each distinct wall segment intersected counts once; shared walls
        between adjacent rooms are stored once per room, so a single physical
        wall between two rooms counts twice — the attenuation constant is
        calibrated with that convention in mind.
        """
        path = Segment(a, b)
        crossings = 0
        for loc in self.locations_on_floor(floor):
            for edge in loc.rect.edges():
                if _properly_crosses(path, edge):
                    crossings += 1
        return crossings

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity; raises :class:`MapModelError` on problems.

        Checks: at least one location, same-floor doors sit on (or near) both
        footprints' boundaries, staircase doors have positive length, and the
        door graph does not reference unknown locations (impossible through
        the public API, but cheap to assert).
        """
        if not self._locations:
            raise MapModelError("building has no locations")
        for door in self._doors:
            a = self.location(door.loc_a)
            b = self.location(door.loc_b)
            if a.floor == b.floor:
                if not (a.rect.contains(door.point_a, tol=1e-3)
                        and b.rect.contains(door.point_a, tol=1e-3)):
                    raise MapModelError(
                        f"door between {door.loc_a!r} and {door.loc_b!r} at "
                        f"({door.point_a.x}, {door.point_a.y}) is not on the "
                        "shared boundary"
                    )
            else:
                if door.length <= 0:
                    raise MapModelError(
                        f"staircase door {door.loc_a!r}-{door.loc_b!r} "
                        "must have a positive walking length"
                    )

    def connected_location_pairs(self) -> Set[Tuple[str, str]]:
        """Ordered pairs of distinct locations connected by *some* path."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.location_names)
        graph.add_edges_from((door.loc_a, door.loc_b) for door in self._doors)
        pairs: Set[Tuple[str, str]] = set()
        for component in nx.connected_components(graph):
            members = sorted(component)
            for a in members:
                for b in members:
                    if a != b:
                        pairs.add((a, b))
        return pairs

    def __repr__(self) -> str:
        return (f"Building({self.name!r}, locations={len(self._locations)}, "
                f"doors={len(self._doors)}, floors={len(self.floors)})")


def _interiors_overlap(a: Rect, b: Rect, tol: float = 1e-9) -> bool:
    """Whether the two rectangles overlap on more than a boundary."""
    return (a.x0 + tol < b.x1 and b.x0 + tol < a.x1
            and a.y0 + tol < b.y1 and b.y0 + tol < a.y1)


def _properly_crosses(path: Segment, wall: Segment) -> bool:
    """Whether ``path`` crosses ``wall`` away from the path's endpoints.

    Touching a wall exactly at one of the path's endpoints (e.g. a reader
    mounted on that wall) is not a crossing.
    """
    if not path.intersects(wall):
        return False
    # Endpoint touches do not count as a wall in the way.
    for endpoint in (path.a, path.b):
        if wall.distance_to_point(endpoint) < 1e-9:
            return False
    return True
