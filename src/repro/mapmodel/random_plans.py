"""Random building generator — stress-testing and property tests.

Generates a floor as a grid of rooms connected by a random spanning tree of
doors (guaranteeing connectivity) plus extra random doors (creating the
multi-path ambiguity that makes cleaning interesting).  Multi-floor
buildings chain floors with staircase rooms like the paper-style plans.

Deterministic given the rng; used by the map-level property tests and
available to users who want workloads beyond SYN1/SYN2.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.errors import MapModelError
from repro.geometry import Rect
from repro.mapmodel.building import Building
from repro.mapmodel.floorplans import STAIR_FLIGHT_LENGTH

__all__ = ["random_building"]


def random_building(num_floors: int = 1,
                    rooms_x: int = 3,
                    rooms_y: int = 2,
                    room_size: float = 5.0,
                    extra_door_fraction: float = 0.3,
                    transit_fraction: float = 0.2,
                    rng: Optional[np.random.Generator] = None,
                    name: str = "random") -> Building:
    """A random, fully connected multi-floor building.

    Each floor is a ``rooms_x`` x ``rooms_y`` grid of square rooms.  Doors
    form a uniform random spanning tree of the grid plus
    ``extra_door_fraction`` of the remaining adjacencies; a random
    ``transit_fraction`` of rooms are marked as corridors (transit).  The
    north-west room of every floor doubles as the staircase landing
    connecting consecutive floors.
    """
    if num_floors < 1 or rooms_x < 1 or rooms_y < 1:
        raise MapModelError("need at least one floor and one room per axis")
    if rooms_x * rooms_y < 2 and num_floors > 1:
        raise MapModelError("multi-floor buildings need >= 2 rooms per floor")
    if rng is None:
        rng = np.random.default_rng()

    building = Building(name)
    for floor in range(num_floors):
        _random_floor(building, floor, rooms_x, rooms_y, room_size,
                      extra_door_fraction, transit_fraction, rng)
    for floor in range(num_floors - 1):
        building.add_door(f"F{floor}_G0_0", f"F{floor + 1}_G0_0",
                          length=STAIR_FLIGHT_LENGTH)
    building.validate()
    return building


def _random_floor(building: Building, floor: int, rooms_x: int, rooms_y: int,
                  room_size: float, extra_door_fraction: float,
                  transit_fraction: float, rng: np.random.Generator) -> None:
    def room_name(ix: int, iy: int) -> str:
        return f"F{floor}_G{ix}_{iy}"

    total = rooms_x * rooms_y
    num_transit = int(round(transit_fraction * total))
    transit_indices = set(
        int(i) for i in rng.choice(total, size=num_transit, replace=False)
    ) if num_transit else set()

    for iy in range(rooms_y):
        for ix in range(rooms_x):
            index = iy * rooms_x + ix
            # The staircase landing (0, 0) is always a staircase room so
            # multi-floor wiring stays uniform.
            if (ix, iy) == (0, 0) and floor is not None:
                kind = "staircase"
            elif index in transit_indices:
                kind = "corridor"
            else:
                kind = "room"
            rect = Rect(ix * room_size, iy * room_size,
                        (ix + 1) * room_size, (iy + 1) * room_size)
            building.add_location(room_name(ix, iy), floor, rect, kind=kind)

    # All grid adjacencies (candidate door positions).
    adjacencies: List[Tuple[str, str]] = []
    for iy in range(rooms_y):
        for ix in range(rooms_x):
            if ix + 1 < rooms_x:
                adjacencies.append((room_name(ix, iy), room_name(ix + 1, iy)))
            if iy + 1 < rooms_y:
                adjacencies.append((room_name(ix, iy), room_name(ix, iy + 1)))

    # Random spanning tree (randomised Kruskal): guarantees connectivity.
    parent = {room_name(ix, iy): room_name(ix, iy)
              for iy in range(rooms_y) for ix in range(rooms_x)}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    order = list(rng.permutation(len(adjacencies)))
    leftovers: List[Tuple[str, str]] = []
    for index in order:
        a, b = adjacencies[int(index)]
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            leftovers.append((a, b))
            continue
        parent[root_a] = root_b
        building.add_door(a, b)

    extra = int(round(extra_door_fraction * len(leftovers)))
    for a, b in leftovers[:extra]:
        building.add_door(a, b)
