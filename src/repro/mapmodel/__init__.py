"""Building maps: locations, doors, floor plans, grids and walking distances.

The map model is the substrate everything else stands on: constraint
inference derives direct-unreachability and traveling-time constraints from
it, the reader model places antennas on it, the grid partitions it into the
0.5 m cells used for calibration, and the synthetic trajectory generator
walks objects through it.
"""

from repro.mapmodel.building import Building, Door, Location
from repro.mapmodel.distances import WalkingDistances
from repro.mapmodel.floorplans import (
    paper_floor,
    multi_floor_building,
    syn1_building,
    syn2_building,
    two_room_map,
    corridor_map,
)
from repro.mapmodel.grid import Cell, Grid
from repro.mapmodel.random_plans import random_building

__all__ = [
    "Building",
    "Door",
    "Location",
    "Grid",
    "Cell",
    "WalkingDistances",
    "paper_floor",
    "multi_floor_building",
    "syn1_building",
    "syn2_building",
    "two_room_map",
    "corridor_map",
    "random_building",
]
