"""Baselines the paper's related work contrasts against (Section 7).

* :mod:`repro.baselines.smoothing` — a SMURF-style per-reader smoothing
  filter [14]: fills false-negative gaps per reader with an adaptive
  window, *without* using the map or motility constraints;
* :mod:`repro.baselines.particles` — constraint-aware particle filtering
  in the spirit of the "sampling under constraints" line [4, 25]: an
  approximate, sample-based alternative to exact conditioning;
* :mod:`repro.baselines.beam` — a beam-limited variant of Algorithm 1's
  forward phase: bounded memory, approximate probabilities, useful when
  TT constraints blow the exact state space up.

All three exist so the evaluation can measure what the paper claims:
conditioning under integrity constraints beats constraint-free smoothing,
and the exact ct-graph beats sampling/approximation at comparable cost.
"""

from repro.baselines.beam import BeamCleaner
from repro.baselines.particles import ParticleFilter
from repro.baselines.smoothing import SmoothingFilter

__all__ = ["SmoothingFilter", "ParticleFilter", "BeamCleaner"]
