"""Beam-limited cleaning: bounded-memory approximate conditioning.

Traveling-time constraints can blow the exact node-state space up (the
paper's own Section 6.7 numbers; our Fig. 8 benches).  When memory is the
binding constraint, a *beam* over the forward frontier — keep only the
``beam_width`` states with the largest filtered mass per level — yields an
approximate ct-graph at bounded cost.

The result is a genuine :class:`~repro.core.ctgraph.CTGraph` (built by the
exact backward sweep over the beam-restricted forward graph), so every
downstream query works unchanged; only the represented trajectory set is a
high-mass subset of the valid ones, and probabilities are conditioned
within that subset.  The ablation benchmark measures what the truncation
costs in accuracy against the exact cleaner.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional

from repro.core.algorithm import CleaningOptions
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.lsequence import LSequence
from repro.core.nodes import (
    DepartureFilter,
    NodeState,
    _unchecked_successor,
    source_states,
)
from repro.errors import InconsistentReadingsError, ReadingSequenceError

__all__ = ["BeamCleaner"]


class BeamCleaner:
    """Approximate Algorithm 1 with a per-level frontier cap."""

    def __init__(self, constraints: ConstraintSet, beam_width: int = 256,
                 options: CleaningOptions = CleaningOptions()) -> None:
        if beam_width < 1:
            raise ReadingSequenceError(
                f"beam_width must be >= 1, got {beam_width}")
        self.constraints = constraints
        self.beam_width = beam_width
        self.options = options

    def build(self, lsequence: LSequence) -> CTGraph:
        """The beam-restricted conditioned graph of ``lsequence``."""
        constraints = self.constraints
        duration = lsequence.duration
        last = duration - 1
        strict = self.options.strict_truncation

        levels: List[Dict[NodeState, CTNode]] = [{} for _ in range(duration)]
        alpha: Dict[CTNode, float] = {}
        prior_source: Dict[CTNode, float] = {}
        for location, state in source_states(lsequence.support(0),
                                             constraints).items():
            if strict and last == 0 and state[1] is not None:
                continue
            node = CTNode(0, *state)
            levels[0][state] = node
            probability = lsequence.probability(0, location)
            prior_source[node] = probability
            alpha[node] = probability
        if not levels[0]:
            raise InconsistentReadingsError(
                "no source location satisfies the constraints at timestep 0")
        self._trim(levels[0], alpha)

        departure_filter = (DepartureFilter(lsequence, constraints)
                            if constraints.tt_sources else None)
        for tau in range(duration - 1):
            candidates = lsequence.candidates(tau + 1)
            next_level = levels[tau + 1]
            filter_binding = strict and tau + 1 == last
            reachable: Dict[str, list] = {}
            for node in levels[tau].values():
                location = node.location
                allowed = reachable.get(location)
                if allowed is None:
                    allowed = [(d, p) for d, p in candidates.items()
                               if not constraints.forbids_step(location, d)]
                    reachable[location] = allowed
                state = (location, node.stay, node.departures)
                mass = alpha[node]
                for destination, probability in allowed:
                    successor = _unchecked_successor(
                        tau, state, destination, constraints,
                        departure_filter)
                    if successor is None:
                        continue
                    if filter_binding and successor[1] is not None:
                        continue
                    child = next_level.get(successor)
                    if child is None:
                        child = CTNode(tau + 1, *successor)
                        next_level[successor] = child
                        alpha[child] = 0.0
                    node.edges[child] = probability
                    child.parents.append(node)
                    alpha[child] += mass * probability
            if not next_level:
                raise InconsistentReadingsError(
                    f"no trajectory can legally continue past timestep {tau}")
            self._trim(next_level, alpha)
            # Rescale the surviving alphas so long sequences cannot
            # underflow (only ratios matter for trimming).
            peak = max(alpha[node] for node in next_level.values())
            if peak > 0.0:
                for node in next_level.values():
                    alpha[node] /= peak

        return self._condition(levels, prior_source)

    # ------------------------------------------------------------------
    def _trim(self, level: Dict[NodeState, CTNode],
              alpha: Dict[CTNode, float]) -> None:
        """Keep the ``beam_width`` highest-mass states; detach the rest."""
        if len(level) <= self.beam_width:
            return
        keep = set(heapq.nlargest(self.beam_width, level.values(),
                                  key=lambda node: alpha[node]))
        for state in [s for s, node in level.items() if node not in keep]:
            node = level.pop(state)
            for parent in node.parents:
                parent.edges.pop(node, None)
            node.parents.clear()
            alpha.pop(node, None)

    def _condition(self, levels: List[Dict[NodeState, CTNode]],
                   prior_source: Dict[CTNode, float]) -> CTGraph:
        """The exact backward sweep over whatever the beam retained."""
        duration = len(levels)
        survival: Dict[CTNode, float] = {
            node: 1.0 for node in levels[duration - 1].values()}
        for tau in range(duration - 2, -1, -1):
            level = levels[tau]
            dead: List[NodeState] = []
            level_max = 0.0
            for state, node in level.items():
                mass = 0.0
                surviving: Dict[CTNode, float] = {}
                for child, probability in node.edges.items():
                    s = survival.get(child, 0.0)
                    if s > 0.0:
                        surviving[child] = probability * s
                        mass += probability * s
                if mass <= 0.0:
                    dead.append(state)
                    node.edges.clear()
                    continue
                node.edges = {child: w / mass
                              for child, w in surviving.items()}
                survival[node] = mass
                level_max = max(level_max, mass)
            for state in dead:
                level.pop(state)
            if not level:
                raise InconsistentReadingsError(
                    "the beam discarded every valid trajectory; "
                    "increase beam_width")
            if level_max > 0.0:
                for node in level.values():
                    survival[node] /= level_max
        for tau in range(1, duration):
            for node in levels[tau].values():
                node.parents = [p for p in node.parents if p.edges]

        source_probabilities: Dict[CTNode, float] = {}
        for node in levels[0].values():
            source_probabilities[node] = (prior_source[node]
                                          * survival.get(node, 1.0))
        total = math.fsum(source_probabilities.values())
        if total <= 0.0:
            raise InconsistentReadingsError(
                "the retained trajectories have zero prior mass")
        for node in source_probabilities:
            source_probabilities[node] /= total
        return CTGraph([tuple(level.values()) for level in levels],
                       source_probabilities)
