"""A SMURF-style smoothing baseline (paper Section 7, reference [14]).

SMURF cleans RFID streams *per reader*: when a reader that has been seeing
a tag misses it for a short while, the miss is treated as a false negative
and filled in.  The original uses statistical estimators to size the
window adaptively; this baseline captures the essential behaviour with a
transparent rule:

    reader r's detection at timestep tau is filled in if r detected the
    tag both at some step in (tau - window, tau) and at some step in
    (tau, tau + window).

Crucially — and this is the paper's point — the filter knows nothing about
the map or the objects' motility: it cannot rule out physically impossible
interpretations, only patch dropouts.  The comparison benchmark measures
exactly that gap.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.lsequence import Reading, ReadingSequence
from repro.errors import ReadingSequenceError

__all__ = ["SmoothingFilter"]


class SmoothingFilter:
    """Per-reader false-negative smoothing of a reading sequence."""

    def __init__(self, window: int = 3) -> None:
        if window < 1:
            raise ReadingSequenceError(
                f"smoothing window must be >= 1, got {window}")
        self.window = window

    def smooth(self, readings: ReadingSequence) -> ReadingSequence:
        """The smoothed sequence: dropout gaps of < ``window`` steps filled.

        A reader's detection is added at ``tau`` iff that reader saw the
        tag at most ``window`` steps before *and* after ``tau`` — interior
        gaps are bridged, leading/trailing silence is left alone (the tag
        may genuinely have been elsewhere).
        """
        duration = readings.duration
        by_reader: Dict[str, List[int]] = {}
        for reading in readings:
            for name in reading.readers:
                by_reader.setdefault(name, []).append(reading.time)

        filled: List[Set[str]] = [set(reading.readers)
                                  for reading in readings]
        for name, times in by_reader.items():
            seen = set(times)
            for i in range(len(times) - 1):
                gap = times[i + 1] - times[i]
                if 1 < gap <= self.window:
                    for tau in range(times[i] + 1, times[i + 1]):
                        filled[tau].add(name)
        return ReadingSequence(
            Reading(tau, frozenset(readers))
            for tau, readers in enumerate(filled))

    def __repr__(self) -> str:
        return f"SmoothingFilter(window={self.window})"
