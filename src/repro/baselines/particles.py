"""A constraint-aware particle filter (the [4, 25] line of work).

"Sampling under constraints" approaches clean RFID data by maintaining
weighted samples that satisfy the constraints.  This baseline is a
bootstrap particle filter over location-node states:

* each particle carries a full node state ``(location, stay, TL)`` — the
  same state the exact algorithm uses, so constraint checking is shared;
* the *proposal* moves a particle to a random legal successor among the
  next step's candidate locations (weighted by the prior);
* particles with no legal continuation die; the population is resampled
  back to size every step (systematic resampling).

The filter outputs per-step *filtered* location estimates like
:class:`repro.core.incremental.IncrementalCleaner`, but approximately and
with O(particles) memory — the comparison benchmark measures the
accuracy/cost trade-off against exact conditioning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence
from repro.core.nodes import NodeState, source_states, successor_state
from repro.errors import InconsistentReadingsError, ReadingSequenceError

__all__ = ["ParticleFilter"]


class ParticleFilter:
    """Bootstrap particle filtering of an l-sequence under constraints."""

    def __init__(self, constraints: ConstraintSet, num_particles: int = 200,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_particles < 1:
            raise ReadingSequenceError(
                f"num_particles must be >= 1, got {num_particles}")
        self.constraints = constraints
        self.num_particles = num_particles
        self.rng = rng if rng is not None else np.random.default_rng()

    def run(self, lsequence: LSequence) -> List[Dict[str, float]]:
        """Filtered location estimates, one distribution per timestep.

        Standard sequential importance resampling: the proposal moves each
        particle to a legal successor drawn proportionally to the next
        step's prior, the importance weight picks up the proposal's
        normaliser (the particle's total legal continuation mass), and the
        population is resampled systematically every step.

        Raises :class:`InconsistentReadingsError` when the entire
        population dies (no particle has any legal continuation).
        """
        rng = self.rng
        estimates: List[Dict[str, float]] = []

        # Initialise from the first step's prior.
        row = lsequence.candidates(0)
        names = list(row)
        probabilities = np.array([row[name] for name in names])
        probabilities = probabilities / probabilities.sum()
        states = source_states(names, self.constraints)
        draws = rng.choice(len(names), size=self.num_particles,
                           p=probabilities)
        particles: List[NodeState] = [states[names[int(i)]] for i in draws]
        weights = np.full(self.num_particles, 1.0 / self.num_particles)
        estimates.append(self._estimate(particles, weights))

        for tau in range(1, lsequence.duration):
            row = lsequence.candidates(tau)
            candidates = list(row.items())
            moved: List[NodeState] = []
            new_weights: List[float] = []
            for state, weight in zip(particles, weights):
                if weight <= 0.0:
                    continue
                options: List[Tuple[NodeState, float]] = []
                mass = 0.0
                for destination, probability in candidates:
                    successor = successor_state(tau - 1, state, destination,
                                                self.constraints)
                    if successor is not None:
                        options.append((successor, probability))
                        mass += probability
                if not options:
                    continue  # the particle is stuck: it dies
                option_weights = np.array([p for _, p in options]) / mass
                pick = int(rng.choice(len(options), p=option_weights))
                moved.append(options[pick][0])
                # The importance weight picks up the proposal normaliser:
                # particles with little legal continuation mass count less.
                new_weights.append(weight * mass)
            total = float(np.sum(new_weights)) if new_weights else 0.0
            if total <= 0.0:
                raise InconsistentReadingsError(
                    f"all particles died at timestep {tau}; increase "
                    "num_particles or use the exact cleaner")
            normalised = np.array(new_weights) / total
            estimates.append(self._estimate(moved, normalised))
            # Systematic resampling back to the population size.
            positions = (rng.random() + np.arange(self.num_particles)) \
                / self.num_particles
            cumulative = np.cumsum(normalised)
            indices = np.searchsorted(cumulative, positions)
            particles = [moved[int(i)] for i in indices]
            weights = np.full(self.num_particles, 1.0 / self.num_particles)
        return estimates

    @staticmethod
    def _estimate(particles: Sequence[NodeState],
                  weights: np.ndarray) -> Dict[str, float]:
        masses: Dict[str, float] = {}
        for (location, _stay, _departures), weight in zip(particles, weights):
            masses[location] = masses.get(location, 0.0) + float(weight)
        total = sum(masses.values())
        return {location: mass / total for location, mass in masses.items()}
