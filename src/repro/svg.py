"""SVG rendering of floor plans, marginals and trajectories.

Dependency-free SVG writers complementing the ASCII views of
:mod:`repro.viz` — these are what goes into a report or a slide:

* :func:`floor_to_svg` — a floor plan (rooms labelled, doors and readers
  marked);
* :func:`marginal_to_svg` — the same plan with a position distribution as
  an opacity heatmap;
* :func:`trajectory_to_svg` — a ground-truth (or sampled) path drawn over
  the plan.

All three return the SVG document as a string; callers write it wherever
they want.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.mapmodel.building import Building
from repro.rfid.readers import ReaderModel

__all__ = ["floor_to_svg", "marginal_to_svg", "trajectory_to_svg"]

#: Pixels per metre.
_SCALE = 24.0
_MARGIN = 12.0

_KIND_FILL = {
    "room": "#f5f0e8",
    "corridor": "#e3e9ef",
    "staircase": "#e8e3ef",
}


def _header(building: Building, floor: int) -> Tuple[List[str], float, float]:
    bounds = building.floor_bounds(floor)
    width = bounds.width * _SCALE + 2 * _MARGIN
    height = bounds.height * _SCALE + 2 * _MARGIN
    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]
    return lines, bounds.x0, bounds.y1   # y flips: SVG grows downward


def _transform(x0: float, y1: float, point: Point) -> Tuple[float, float]:
    return (_MARGIN + (point.x - x0) * _SCALE,
            _MARGIN + (y1 - point.y) * _SCALE)


def _draw_rooms(lines: List[str], building: Building, floor: int,
                x0: float, y1: float,
                fill_override: Optional[Dict[str, str]] = None,
                opacity: Optional[Dict[str, float]] = None) -> None:
    for location in building.locations_on_floor(floor):
        rect = location.rect
        px, py = _transform(x0, y1, Point(rect.x0, rect.y1))
        width = rect.width * _SCALE
        height = rect.height * _SCALE
        fill = (fill_override or {}).get(
            location.name, _KIND_FILL.get(location.kind, "#f5f0e8"))
        alpha = (opacity or {}).get(location.name, 1.0)
        lines.append(
            f'<rect x="{px:.1f}" y="{py:.1f}" width="{width:.1f}" '
            f'height="{height:.1f}" fill="{fill}" fill-opacity="{alpha:.3f}" '
            'stroke="#333" stroke-width="2"/>')
        cx, cy = _transform(x0, y1, rect.center)
        lines.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="11" '
            'text-anchor="middle" font-family="sans-serif" '
            f'fill="#333">{location.name}</text>')


def _draw_doors(lines: List[str], building: Building, floor: int,
                x0: float, y1: float) -> None:
    seen = set()
    for door in building.doors:
        for name in (door.loc_a, door.loc_b):
            location = building.location(name)
            if location.floor != floor:
                continue
            px, py = _transform(x0, y1, door.point_in(name))
            key = (round(px, 1), round(py, 1))
            if key in seen:
                continue  # same-floor doors share one physical point
            seen.add(key)
            lines.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" fill="white" '
                'stroke="#333" stroke-width="1.5"/>')


def floor_to_svg(building: Building, floor: int, *,
                 readers: Optional[ReaderModel] = None) -> str:
    """An SVG floor plan: rooms (tinted by kind), doors, optional readers."""
    lines, x0, y1 = _header(building, floor)
    _draw_rooms(lines, building, floor, x0, y1)
    _draw_doors(lines, building, floor, x0, y1)
    if readers is not None:
        for reader in readers.readers:
            if reader.floor != floor:
                continue
            px, py = _transform(x0, y1, reader.position)
            lines.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3.5" '
                'fill="#c0392b"/>')
            radius = reader.major_radius * _SCALE
            lines.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius:.1f}" '
                'fill="none" stroke="#c0392b" stroke-width="0.8" '
                'stroke-dasharray="4 3" opacity="0.6"/>')
    lines.append("</svg>")
    return "\n".join(lines)


def marginal_to_svg(building: Building, floor: int,
                    marginal: Dict[str, float]) -> str:
    """The floor plan with a position distribution as a heatmap."""
    lines, x0, y1 = _header(building, floor)
    peak = max(marginal.values(), default=0.0) or 1.0
    fills = {}
    opacity = {}
    for location in building.locations_on_floor(floor):
        probability = marginal.get(location.name, 0.0)
        if probability > 0.0:
            fills[location.name] = "#2e6f9e"
            opacity[location.name] = 0.15 + 0.85 * probability / peak
    _draw_rooms(lines, building, floor, x0, y1, fills, opacity)
    _draw_doors(lines, building, floor, x0, y1)
    off_floor = 1.0 - sum(
        p for name, p in marginal.items()
        if name in {l.name for l in building.locations_on_floor(floor)})
    lines.append(
        f'<text x="{_MARGIN:.0f}" y="{_MARGIN - 2:.0f}" font-size="10" '
        f'font-family="sans-serif" fill="#666">off-floor mass: '
        f'{max(0.0, off_floor):.3f}</text>')
    lines.append("</svg>")
    return "\n".join(lines)


def trajectory_to_svg(building: Building, floor: int,
                      floors: Sequence[int], points: Sequence[Point]) -> str:
    """The floor plan with a (ground-truth) path drawn over it.

    Only the path segments on ``floor`` are drawn; floor changes break the
    polyline.
    """
    lines, x0, y1 = _header(building, floor)
    _draw_rooms(lines, building, floor, x0, y1)
    _draw_doors(lines, building, floor, x0, y1)

    segment: List[str] = []

    def flush() -> None:
        if len(segment) >= 2:
            lines.append(
                f'<polyline points="{" ".join(segment)}" fill="none" '
                'stroke="#27ae60" stroke-width="2" opacity="0.8"/>')
        segment.clear()

    for point_floor, point in zip(floors, points):
        if point_floor != floor:
            flush()
            continue
        px, py = _transform(x0, y1, point)
        segment.append(f"{px:.1f},{py:.1f}")
    flush()
    # Start and end markers (first/last on-floor samples).
    on_floor = [point for point_floor, point in zip(floors, points)
                if point_floor == floor]
    if on_floor:
        sx, sy = _transform(x0, y1, on_floor[0])
        ex, ey = _transform(x0, y1, on_floor[-1])
        lines.append(f'<circle cx="{sx:.1f}" cy="{sy:.1f}" r="5" '
                     'fill="#27ae60"/>')
        lines.append(f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="5" '
                     'fill="none" stroke="#27ae60" stroke-width="2"/>')
    lines.append("</svg>")
    return "\n".join(lines)
