# Development targets for rfid-ctg.

PYTHON ?= python

.PHONY: install test bench bench-paper report examples loc clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report --both --scale small --out evaluation_report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
