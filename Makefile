# Development targets for rfid-ctg.

PYTHON ?= python

.PHONY: install test lint typecheck check bench bench-paper bench-parallel bench-faults bench-engine bench-queries bench-kernels bench-store bench-streaming report examples loc clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static gates.  repro.lint (rules L001-L010, see docs/lint.md) is
# stdlib-only and always runs; ruff/mypy run when installed
# (pip install -e .[lint]) and are skipped with a notice otherwise, so
# the targets work in minimal containers too.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src tools
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed -- skipping (pip install -e .[lint])"; \
	fi

typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy -p repro.analysis; \
	else \
		echo "mypy not installed -- skipping (pip install -e .[lint])"; \
	fi

check: lint typecheck test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Multi-object batch runtime: sequential vs parallel cleaning of one
# workload, output-identity check, BENCH_parallel.json with the speedup.
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py --out BENCH_parallel.json
	$(PYTHON) benchmarks/bench_parallel.py --check BENCH_parallel.json

# Fault-tolerance smoke: inject a worker-killing object and a
# deadline-busting object, assert both are quarantined while the real
# workload stays identical to sequential.  BENCH_faults.json is a
# diagnostic artifact, not a tracked baseline.
bench-faults:
	$(PYTHON) benchmarks/bench_parallel.py --smoke --inject-crash \
		--inject-timeout --out BENCH_faults.json
	$(PYTHON) benchmarks/bench_parallel.py --check BENCH_faults.json

# Reference vs compact single-object engine: bit-identity check plus the
# cold/warm speedup sweep, BENCH_engine.json with the headline number.
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json
	$(PYTHON) benchmarks/bench_engine.py --check BENCH_engine.json

# Node-path vs flat QuerySession: bit-identical answers check plus the
# many-queries-per-graph speedup sweep, BENCH_queries.json with the
# headline number.
bench-queries:
	$(PYTHON) benchmarks/bench_queries.py --out BENCH_queries.json
	$(PYTHON) benchmarks/bench_queries.py --check BENCH_queries.json

# Vectorized level-sweep kernels (needs the numpy extra): the wide
# kernel workload of both benches, parity-gated against the python
# oracle, refreshing the kernel_speedup blocks of both BENCH files.
bench-kernels:
	$(PYTHON) benchmarks/bench_engine.py --backend numpy --out BENCH_engine.json
	$(PYTHON) benchmarks/bench_engine.py --check BENCH_engine.json
	$(PYTHON) benchmarks/bench_queries.py --backend numpy --out BENCH_queries.json
	$(PYTHON) benchmarks/bench_queries.py --check BENCH_queries.json

# Binary graph store vs pickle (needs the numpy extra for the direct
# ndarray write path): engine -> .ctg direct write vs pickle, cold mmap
# load (>= 5x gate), warm mmap-served query parity, BENCH_store.json.
bench-store:
	$(PYTHON) benchmarks/bench_store.py --backend numpy --out BENCH_store.json
	$(PYTHON) benchmarks/bench_store.py --check BENCH_store.json

# Bounded-memory streaming: 100k-step stream with window=64, eviction
# and resume bit-equality gates plus the memory bounds, the vectorized
# frontier-kernel parity + speedup (>= 4x gate, needs the numpy extra;
# records available:false and skips the speedup gate without it) and
# the 2-shard merged-output identity.  BENCH_streaming.json carries the
# kernel and shard blocks.
bench-streaming:
	$(PYTHON) benchmarks/bench_streaming.py --backend numpy --out BENCH_streaming.json
	$(PYTHON) benchmarks/bench_streaming.py --check BENCH_streaming.json

report:
	$(PYTHON) -m repro.cli report --both --scale small --out evaluation_report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
