#!/usr/bin/env python
"""DEPRECATED shim over :mod:`repro.lint`, the promoted invariant linter.

The three historical rules live on in ``repro.lint`` under new codes —
INV001 -> L001 (no ``==``/``!=`` against fractional float literals),
INV002 -> L002 (no bare ``except:``), INV003 -> L003 (no
``object.__setattr__`` outside ``__post_init__``) — alongside the
engine-specific rules L004-L008; ``docs/lint.md`` is the catalog.

This shim keeps the historical entry point working (``make``/CI/scripts
invoking ``python tools/check_invariants.py``): same INV codes on
findings, same messages, same exit-code contract (0 clean, 1 findings,
2 usage/parse errors).  ``# invariant-ok: INVxxx`` suppressions are still
honoured by the new engine.  Prefer ``python -m repro.lint src tools``
(or ``rfid-ctg lint``) — it runs all eight rules.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, NamedTuple, Sequence

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.lint import LEGACY_CODES, lint_path, lint_source, python_files  # noqa: E402

__all__ = ["Finding", "check_source", "check_path", "main"]

#: Promoted L code -> historical INV code (what this shim reports).
_TO_LEGACY = {new: old for old, new in LEGACY_CODES.items()}
_LEGACY_SELECT = frozenset(_TO_LEGACY)


class Finding(NamedTuple):
    """One invariant violation, under its historical INV code."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _as_legacy(findings) -> List[Finding]:
    return [Finding(finding.path, finding.line, _TO_LEGACY[finding.code],
                    finding.message)
            for finding in findings]


def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Every legacy-rule violation in one Python source text."""
    return _as_legacy(lint_source(source, path, select=_LEGACY_SELECT))


def check_path(path: Path) -> List[Finding]:
    """Every legacy-rule violation in one file."""
    return _as_legacy(lint_path(path, select=_LEGACY_SELECT))


def main(argv: Sequence[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    print("note: tools/check_invariants.py is a deprecated shim over the "
          "L001-L003 subset; prefer `python -m repro.lint` (all rules, "
          "see docs/lint.md)", file=sys.stderr)
    findings: List[Finding] = []
    checked = 0
    for path in python_files(list(argv)):
        try:
            findings.extend(check_path(path))
        except SyntaxError as error:
            print(f"{path}: could not parse: {error}", file=sys.stderr)
            return 2
        checked += 1
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_invariants: {len(findings)} finding(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_invariants: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
