#!/usr/bin/env python
"""Repo-specific AST lint: invariants ruff/mypy cannot express.

Three rules, each with a stable code:

* **INV001** — no ``==``/``!=`` against a fractional float literal.
  Probabilities in this codebase are accumulated by multiplication and
  ``fsum``; exact equality against values like ``0.5`` or ``1e-6`` is a
  float-comparison bug waiting to happen.  Comparisons against the exact
  sentinels ``0.0``/``1.0``/``-1.0`` (support emptiness, untouched
  survival) are allowed — they test provenance, not arithmetic — as are
  tolerance helpers (``math.isclose``, ``pytest.approx``, ``abs(a - b) <
  eps``), which never use ``==``.

* **INV002** — no bare ``except:``.  A bare except swallows
  ``KeyboardInterrupt``/``SystemExit``; catch ``Exception`` or the
  precise :mod:`repro.errors` subtype instead.

* **INV003** — no ``object.__setattr__`` outside ``__post_init__``.
  The frozen dataclasses (constraints, readings, diagnostics) are hashed
  and shared; mutating one after construction invalidates every index
  built over it.  ``__post_init__`` normalisation is the sanctioned
  exception.

A trailing ``# invariant-ok: <CODE>`` comment suppresses a finding on
that line (used sparingly, and visible in review).

Usage::

    python tools/check_invariants.py src/ [more paths...]

Exit code 0 when clean, 1 when any finding is reported, 2 on usage or
parse errors.  Stdlib only — this is the lint gate that runs even where
ruff/mypy are not installed.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Sequence, Set, Tuple

__all__ = ["Finding", "check_source", "check_path", "main"]

#: Float literals that may be compared exactly: distribution emptiness and
#: the untouched-survival sentinel.  Everything fractional is suspect.
EXACT_FLOAT_SENTINELS = (0.0, 1.0, -1.0)

SUPPRESSION_MARK = "# invariant-ok:"


class Finding(NamedTuple):
    """One invariant violation."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_fractional_float(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value not in EXACT_FLOAT_SENTINELS)


class _InvariantVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._function_stack: List[str] = []

    # -- INV001 -----------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_fractional_float(left) or _is_fractional_float(right):
                self.findings.append(Finding(
                    self.path, node.lineno, "INV001",
                    "exact ==/!= against a fractional float literal; use "
                    "math.isclose / an explicit tolerance"))
                break
        self.generic_visit(node)

    # -- INV002 -----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(Finding(
                self.path, node.lineno, "INV002",
                "bare `except:`; catch Exception or a repro.errors type"))
        self.generic_visit(node)

    # -- INV003 -----------------------------------------------------------
    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._function_stack.append(name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and "__post_init__" not in self._function_stack):
            self.findings.append(Finding(
                self.path, node.lineno, "INV003",
                "object.__setattr__ outside __post_init__ mutates a "
                "frozen dataclass after construction"))
        self.generic_visit(node)


def _suppressed_lines(source: str) -> Set[Tuple[int, str]]:
    suppressed: Set[Tuple[int, str]] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        mark = line.find(SUPPRESSION_MARK)
        if mark < 0:
            continue
        for code in line[mark + len(SUPPRESSION_MARK):].replace(",", " ").split():
            suppressed.add((lineno, code.strip().upper()))
    return suppressed


def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Every invariant violation in one Python source text."""
    tree = ast.parse(source, filename=path)
    visitor = _InvariantVisitor(path)
    visitor.visit(tree)
    suppressed = _suppressed_lines(source)
    return [finding for finding in visitor.findings
            if (finding.line, finding.code) not in suppressed]


def _python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def check_path(path: Path) -> List[Finding]:
    """Every invariant violation in one file."""
    return check_source(path.read_text(), str(path))


def main(argv: Sequence[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    findings: List[Finding] = []
    checked = 0
    for path in _python_files(argv):
        try:
            findings.extend(check_path(path))
        except SyntaxError as error:
            print(f"{path}: could not parse: {error}", file=sys.stderr)
            return 2
        checked += 1
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_invariants: {len(findings)} finding(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_invariants: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
