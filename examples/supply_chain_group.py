#!/usr/bin/env python
"""Supply-chain scenario: group correlations and live tracking.

The paper's Section 8 names its future work: correlations in "groups of
objects moving together, which typically characterize supply-chain
scenarios".  This example exercises exactly that extension:

* a pallet and the forklift carrying it are tagged separately and produce
  *independent* noisy readings of the same physical route;
* each stream is cleaned on its own, then the two cleaned distributions are
  conditioned on the event "same location at every timestep"
  (:func:`repro.core.groups.condition_on_meeting`) — pooling the evidence
  sharpens both;
* meanwhile the forklift stream is also consumed *online* through
  :class:`repro.core.incremental.IncrementalCleaner`, the way a live
  dashboard would.

Run:  python examples/supply_chain_group.py
"""

import numpy as np

from repro import (
    IncrementalCleaner,
    LSequence,
    build_ct_graph,
    condition_on_meeting,
    corridor_map,
    infer_constraints,
    stay_query,
    uncertainty_reduction,
)
from repro.core.lsequence import ReadingSequence
from repro.inference import MotilityProfile
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import calibrate, exact_matrix
from repro.rfid.priors import PriorModel
from repro.rfid.readers import place_default_readers
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import (
    MovementParameters,
    TrajectoryGenerator,
)


def main() -> None:
    warehouse = corridor_map(num_rooms=4, room_size=6.0)
    profile = MotilityProfile(max_speed=1.5, min_stay=5)
    constraints = infer_constraints(warehouse, profile)

    rng = np.random.default_rng(11)
    grid = Grid(warehouse)
    readers = place_default_readers(warehouse)
    truth_matrix = exact_matrix(readers, grid)
    prior = PriorModel(calibrate(readers, grid, rng=rng))

    # One physical route, two independent tag streams.
    movement = MovementParameters(velocity_range=(0.8, 1.5),
                                  room_rest_range=(20, 40),
                                  transit_rest_range=(0, 4))
    route = TrajectoryGenerator(warehouse, movement, rng).generate(240)
    reading_generator = ReadingGenerator(truth_matrix, rng)
    pallet_readings = reading_generator.generate(route)
    forklift_readings = reading_generator.generate(route)

    pallet_ls = LSequence.from_readings(pallet_readings, prior)
    forklift_ls = LSequence.from_readings(forklift_readings, prior)
    pallet = build_ct_graph(pallet_ls, constraints)
    forklift = build_ct_graph(forklift_ls, constraints)
    together = condition_on_meeting(pallet, forklift)

    print(f"route truth: "
          f"{' -> '.join(loc for loc, _ in route.stay_sequence())}")
    print(f"pallet graph:   {pallet}")
    print(f"forklift graph: {forklift}")
    print(f"joint graph:    {together}\n")

    # --- pooling evidence sharpens position estimates --------------------
    print("per-step accuracy of the position estimate (truth probability):")
    singles, joints = [], []
    for tau in range(route.duration):
        truth = route.locations[tau]
        singles.append(stay_query(pallet, tau).get(truth, 0.0))
        joints.append(together.location_marginal(tau).get(truth, 0.0))
    print(f"  pallet alone : {np.mean(singles):.3f}")
    print(f"  group-pooled : {np.mean(joints):.3f}")
    print(f"  (uncertainty reduction of cleaning alone: "
          f"{uncertainty_reduction(pallet_ls, pallet):.3f} bits/step)\n")

    # --- live tracking of the forklift stream ----------------------------
    print("live tracking (filtered estimate every 40 s):")
    live = IncrementalCleaner(constraints, prior=prior)
    for tau, reading in enumerate(forklift_readings):
        live.extend_reading(reading.readers)
        if (tau + 1) % 40 == 0:
            estimate = live.filtered_distribution()
            best = max(estimate, key=estimate.get)
            marker = "+" if best == route.locations[tau] else "-"
            print(f"  t={tau:3d}  guess={best:10s} "
                  f"p={estimate[best]:.2f}  truth={route.locations[tau]:10s} "
                  f"{marker}  (frontier: {live.frontier_size()} states)")

    final = live.finalize()
    print(f"\nfinalized online graph equals batch: "
          f"{abs(final.num_valid_trajectories() - forklift.num_valid_trajectories()) == 0}")


if __name__ == "__main__":
    main()
