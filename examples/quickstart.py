#!/usr/bin/env python
"""Quickstart: clean one RFID reading sequence end to end.

This walks the whole pipeline on a tiny hand-made scenario:

1. describe a map (two rooms and a corridor);
2. deploy readers and calibrate them (simulated, like the paper's Sec. 6.2);
3. infer the integrity constraints from the map and a motility profile;
4. interpret a reading sequence through the a-priori model;
5. build the conditioned-trajectory graph (Algorithm 1);
6. ask where the object was, before and after cleaning.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Grid,
    LSequence,
    ReadingSequence,
    TrajectoryQuery,
    build_ct_graph,
    calibrate,
    corridor_map,
    infer_constraints,
    place_default_readers,
    stay_query,
    stay_query_prior,
)
from repro.rfid.priors import PriorModel


def main() -> None:
    # 1. The map: two rooms off a corridor (room1 and room2 are not
    #    directly connected — you must cross the corridor).
    building = corridor_map(num_rooms=2, room_size=5.0)
    print(f"map: {building}")
    print(f"  adjacency: room1 <-> {building.neighbors('room1')}")

    # 2. Readers + calibration (the paper's tag-in-every-cell procedure).
    rng = np.random.default_rng(42)
    grid = Grid(building, cell_size=0.5)
    readers = place_default_readers(building)
    matrix = calibrate(readers, grid, rng=rng)
    prior = PriorModel(matrix)
    print(f"  {len(readers)} readers, {grid.num_cells} calibration cells")

    # 3. Constraints: inferred from the map + how fast people walk.
    constraints = infer_constraints(building)
    print(f"  inferred constraints: {constraints}")

    # 4. A reading sequence: the object pauses in room1, then the
    #    detections get ambiguous (corridor reader bleed / false negatives).
    room1 = next(n for n in readers.reader_names if "room1" in n)
    corridor = next(n for n in readers.reader_names if "corridor" in n)
    reader_sets = [{room1}] * 8 + [{room1, corridor}, {corridor}, set(),
                                   {corridor}] + [{room1}] * 8
    readings = ReadingSequence.from_reader_sets(reader_sets)
    lsequence = LSequence.from_readings(readings, prior)

    # 5. Clean: build the conditioned-trajectory graph.
    graph = build_ct_graph(lsequence, constraints)
    print(f"\ncleaned: {graph} "
          f"({graph.num_valid_trajectories()} valid trajectories out of "
          f"{lsequence.num_trajectories()} interpretations)")

    # 6. Where was the object at the ambiguous timestep 10?
    tau = 10
    print(f"\nwhere was the object at t={tau}?")
    print(f"  raw prior : {_fmt(stay_query_prior(lsequence, tau))}")
    print(f"  cleaned   : {_fmt(stay_query(graph, tau))}")

    # And a pattern query: did it ever settle in room2 for 3+ seconds?
    query = TrajectoryQuery("? room2[3] ?")
    print(f"\nP(visited room2 for >=3s) = {query.probability(graph):.3f}")


def _fmt(distribution) -> str:
    items = sorted(distribution.items(), key=lambda kv: -kv[1])
    return ", ".join(f"{loc}={p:.2f}" for loc, p in items[:4])


if __name__ == "__main__":
    main()
