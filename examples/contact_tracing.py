#!/usr/bin/env python
"""Contact tracing: did two independently tracked people meet?

Two people wear RFID badges in the same building; one later turns out to
be a disease carrier (or a security risk).  Each badge produced its own
noisy reading stream.  The question — *did they meet, and when?* — is a
joint query over the two cleaned trajectory distributions:

* :func:`repro.queries.meeting.meeting_probability` — P(ever co-located);
* :func:`repro.queries.meeting.meeting_time_distribution` — when the first
  contact happened;
* :func:`repro.queries.meeting.colocation_profile` — the contact window.

All three meeting queries accept prebuilt
:class:`~repro.queries.session.QuerySession`s, so the per-person sweeps
are computed once and shared across every joint query (and any
single-object questions asked along the way).

The example also renders the cleaned position estimates as ASCII heatmaps
(:mod:`repro.viz`) at the most likely contact moment.

Run:  python examples/contact_tracing.py
"""

import numpy as np

from repro import (
    LSequence,
    QuerySession,
    build_ct_graph,
    infer_constraints,
    meeting_probability,
    meeting_time_distribution,
    colocation_profile,
    multi_floor_building,
)
from repro.inference import MotilityProfile
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import calibrate, exact_matrix
from repro.rfid.priors import PriorModel
from repro.rfid.readers import place_default_readers
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import TrajectoryGenerator
from repro.viz import render_marginal


def main() -> None:
    building = multi_floor_building(1, name="clinic")
    profile = MotilityProfile()
    constraints = infer_constraints(building, profile)

    rng = np.random.default_rng(5)
    grid = Grid(building)
    readers = place_default_readers(building)
    truth_matrix = exact_matrix(readers, grid)
    prior = PriorModel(calibrate(readers, grid, rng=rng))

    generator = TrajectoryGenerator(building, rng=rng)
    reading_generator = ReadingGenerator(truth_matrix, rng)

    carrier_truth = generator.generate(420)
    visitor_truth = generator.generate(420)
    carrier = build_ct_graph(
        LSequence.from_readings(reading_generator.generate(carrier_truth),
                                prior), constraints)
    visitor = build_ct_graph(
        LSequence.from_readings(reading_generator.generate(visitor_truth),
                                prior), constraints)

    # Ground truth for reference.
    actual_meetings = [tau for tau in range(420)
                       if carrier_truth.locations[tau]
                       == visitor_truth.locations[tau]]
    if actual_meetings:
        print(f"ground truth: first contact at t={actual_meetings[0]} in "
              f"{carrier_truth.locations[actual_meetings[0]]} "
              f"({len(actual_meetings)} co-located seconds total)")
    else:
        print("ground truth: the two never met")

    # One session per person: the forward sweeps behind the meeting
    # queries (and the marginals below) are computed once and reused.
    carrier_session = QuerySession(carrier)
    visitor_session = QuerySession(visitor)

    p_meet = meeting_probability(carrier_session, visitor_session)
    print(f"\nP(contact at some point) = {p_meet:.3f}")

    first = meeting_time_distribution(carrier_session, visitor_session)
    if first:
        top = sorted(first.items(), key=lambda kv: -kv[1])[:5]
        print("most likely first-contact times:")
        for tau, probability in top:
            print(f"  t={tau:3d}  p={probability:.3f}")

    profile_values = colocation_profile(carrier_session, visitor_session)
    hot = int(np.argmax(profile_values))
    print(f"\nhighest co-location probability at t={hot} "
          f"(p={profile_values[hot]:.3f})")

    print("\ncarrier position estimate at that moment:")
    print(render_marginal(building, 0,
                          carrier_session.location_marginal(hot)))
    print("\nvisitor position estimate at that moment:")
    print(render_marginal(building, 0,
                          visitor_session.location_marginal(hot)))


if __name__ == "__main__":
    main()
