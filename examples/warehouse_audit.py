#!/usr/bin/env python
"""Warehouse scenario: auditing item flow through processing stations.

Tagged pallets move through a warehouse: storage bays along a central
aisle.  Every pallet that enters a station is processed for at least a
known latency (scanning, weighing, wrapping), which the cleaning framework
encodes as LT constraints; the aisle geometry yields DU/TT constraints.

The audit questions compare each pallet's *cleaned* route to the intended
process sequence, and export the cleaned data as a Markovian stream —
the paper's Section 5 remark — for downstream warehousing tools.

Run:  python examples/warehouse_audit.py
"""

import numpy as np

from repro import (
    ConstraintSet,
    Latency,
    LSequence,
    MovementParameters,
    TrajectoryQuery,
    build_ct_graph,
    build_dataset,
    corridor_map,
    infer_constraints,
)
from repro.inference import MotilityProfile, infer_du_constraints, \
    infer_tt_constraints
from repro.markov.stream import MarkovianStream

#: The intended process: receiving -> scanning -> wrapping -> shipping.
PROCESS = ("room1", "room2", "room3", "room4")
STATION_NAMES = {
    "room1": "receiving",
    "room2": "scanning",
    "room3": "wrapping",
    "room4": "shipping",
    "corridor": "aisle",
}
#: Minimum processing time (seconds) at each station.
STATION_LATENCY = 20


def main() -> None:
    warehouse = corridor_map(num_rooms=4, room_size=6.0)
    profile = MotilityProfile(max_speed=1.5, min_stay=STATION_LATENCY)

    # Domain-specific constraints: map-implied DU/TT plus per-station
    # processing latencies (stronger than a generic min_stay would be).
    constraints = ConstraintSet(
        infer_du_constraints(warehouse)
        + infer_tt_constraints(warehouse, profile.max_speed)
        + [Latency(station, STATION_LATENCY) for station in PROCESS])

    # Simulate three pallets; forklifts dwell 20-45 s at stations.
    dataset = build_dataset(
        warehouse, durations=(300,), per_duration=3, seed=99,
        movement=MovementParameters(velocity_range=(0.8, 1.5),
                                    room_rest_range=(25, 45),
                                    transit_rest_range=(0, 4)))

    process_query = TrajectoryQuery(
        " ".join(["?"] + [f"{station}[{STATION_LATENCY}] ?"
                          for station in PROCESS]))
    print(f"warehouse: {warehouse}")
    print(f"audit pattern: {process_query.pattern}\n")

    for index, pallet in enumerate(dataset.trajectories[300], start=1):
        truth = tuple(pallet.truth.locations)
        lsequence = LSequence.from_readings(pallet.readings, dataset.prior)
        graph = build_ct_graph(lsequence, constraints)

        route = [STATION_NAMES[loc] for loc, _ in pallet.truth.stay_sequence()]
        followed = process_query.matches(truth)
        p_followed = process_query.probability(graph)
        print(f"pallet #{index}: actual route {' -> '.join(route)}")
        print(f"  followed full process? truth="
              f"{'yes' if followed else 'no'}  "
              f"P(cleaned)={p_followed:.3f}  "
              f"P(raw)={process_query.probability_prior(lsequence):.3f}")

        # Per-station audit: how long was the pallet processed?
        for station in PROCESS:
            query = TrajectoryQuery(f"? {station}[{STATION_LATENCY}] ?")
            print(f"    {STATION_NAMES[station]:10s} "
                  f"P(processed >= {STATION_LATENCY}s) = "
                  f"{query.probability(graph):.3f}")

        # Export for the warehouse's Markovian-stream tooling.
        stream = MarkovianStream.from_ct_graph(graph)
        start = max(stream.initial, key=stream.initial.get)
        print(f"  exported {stream}; most likely start: "
              f"{STATION_NAMES[start]}\n")


if __name__ == "__main__":
    main()
