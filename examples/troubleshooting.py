#!/usr/bin/env python
"""Troubleshooting: ghost reads, inconsistency diagnosis, exploration.

Three things a deployment engineer meets in practice:

1. **Ghost reads that cleaning absorbs.**  A burst of spurious detections
   from the wrong end of the warehouse *should* make the data nonsense —
   but conditioning quietly discounts it, because the constraint-valid
   interpretations (the object stayed where it was; the far readers were
   hearing through walls) carry almost all of the conditioned mass.

2. **Genuinely inconsistent data.**  When no interpretation survives,
   :func:`repro.diagnose` pinpoints the timestep and the constraints that
   killed every candidate move — instead of a bare exception.

3. **Exploring the cleaned result** with the mini query language and the
   terminal renderers.

Run:  python examples/troubleshooting.py
"""

import numpy as np

from repro import (
    ConstraintSet,
    InconsistentReadingsError,
    Latency,
    LSequence,
    Reading,
    ReadingSequence,
    TravelingTime,
    Unreachable,
    build_ct_graph,
    corridor_map,
    diagnose,
    infer_constraints,
)
from repro.inference import MotilityProfile
from repro.mapmodel.grid import Grid
from repro.queries.ql import execute
from repro.queries.stay import stay_query, stay_query_prior
from repro.rfid.calibration import calibrate, exact_matrix
from repro.rfid.priors import PriorModel
from repro.rfid.readers import place_default_readers
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import TrajectoryGenerator
from repro.viz import render_entropy_sparkline


def main() -> None:
    building = corridor_map(num_rooms=4, room_size=6.0)
    constraints = infer_constraints(building, MotilityProfile(max_speed=1.5))

    rng = np.random.default_rng(21)
    grid = Grid(building)
    readers = place_default_readers(building)
    prior = PriorModel(calibrate(readers, grid, rng=rng))

    truth = TrajectoryGenerator(building, rng=rng).generate(180)
    readings = ReadingGenerator(exact_matrix(readers, grid),
                                rng).generate(truth)

    # --- 1. a ghost burst that conditioning absorbs -----------------------
    burst_at = 60
    here = truth.locations[burst_at]
    far_room = "room4" if here != "room4" else "room1"
    far_readers = frozenset(n for n in readers.reader_names
                            if far_room in n)
    corrupted = [Reading(r.time, far_readers)
                 if burst_at <= r.time < burst_at + 3 else r
                 for r in readings]
    lsequence = LSequence.from_readings(ReadingSequence(corrupted), prior)

    print(f"truth at t={burst_at}: {here}; the stream claims "
          f"{sorted(far_readers)} fired for 3 s\n")
    raw = stay_query_prior(lsequence, burst_at)
    graph = build_ct_graph(lsequence, constraints)
    cleaned = stay_query(graph, burst_at)
    print(f"P({far_room} at t={burst_at}):  raw prior = "
          f"{raw.get(far_room, 0.0):.3f}   cleaned = "
          f"{cleaned.get(far_room, 0.0):.3f}")
    print(f"P({here!s:9s} at t={burst_at}):  raw prior = "
          f"{raw.get(here, 0.0):.3f}   cleaned = "
          f"{cleaned.get(here, 0.0):.3f}")
    print("-> the physically impossible burst is discounted by "
          "conditioning\n")

    # --- 2. genuinely inconsistent data: diagnose it ----------------------
    print("a stream that *no* interpretation can explain:")
    bad = LSequence([
        {"room1": 1.0},
        {"room1": 0.7, "corridor": 0.3},
        {"room4": 1.0},                      # 12 m away, 2 s after room1
    ])
    tight = ConstraintSet([
        Unreachable("room1", "room4"), Unreachable("room4", "room1"),
        TravelingTime("room1", "room4", 6), TravelingTime("corridor", "room4", 2),
        Latency("room1", 2),
    ])
    try:
        build_ct_graph(bad, tight)
    except InconsistentReadingsError:
        report = diagnose(bad, tight)
        print(f"  cleaning failed; {report.summary()}")
        for move in report.blocked:
            print(f"    blocked: {move}")
    print()

    # --- 3. explore the (ghost-cleaned) graph -----------------------------
    for statement in (f"STAY {burst_at}", f"DWELL {far_room}", "BEST"):
        result = execute(graph, statement)
        print(f"> {statement}")
        print(result.format(limit=4))
        print()

    from repro.queries.analytics import entropy_profile, entropy_profile_prior
    print("uncertainty, before vs after cleaning:")
    print(" raw    ", render_entropy_sparkline(entropy_profile_prior(lsequence)))
    print(" cleaned", render_entropy_sparkline(entropy_profile(graph)))


if __name__ == "__main__":
    main()
