#!/usr/bin/env python
"""Security scenario: forensic analysis of a tracked badge (paper's intro).

Security staff of a multi-floor office building review the trajectory of a
tagged badge after an incident.  The questions are classic trajectory
queries: *was the badge ever in the server room?*, *did it linger near the
archive?*, *which route did it most likely take?*  Raw interpretations are
unreliable (readers bleed across walls, detections drop out); cleaning
under the building's constraints sharpens every answer.

This example also shows the sampling API: drawing plausible full
trajectories from the cleaned graph for what-if review.

Run:  python examples/office_security.py
"""

import numpy as np

from repro import (
    LSequence,
    TrajectoryQuery,
    TrajectorySampler,
    build_ct_graph,
    build_dataset,
    infer_constraints,
    multi_floor_building,
    stay_query,
)
from repro.inference import MotilityProfile

SERVER_ROOM = "F1_R4"
ARCHIVE = "F0_R6"
RECEPTION = "F0_R1"


def main() -> None:
    # Two floors; the server room is upstairs, reception and the archive
    # are on the ground floor.
    office = multi_floor_building(2, name="office")
    profile = MotilityProfile(max_speed=2.0, min_stay=5)

    dataset = build_dataset(office, durations=(600,), per_duration=1,
                            seed=777)
    badge = dataset.trajectories[600][0]
    truth = badge.truth.locations

    constraints = infer_constraints(office, profile,
                                    distances=dataset.distances)
    lsequence = LSequence.from_readings(badge.readings, dataset.prior)
    graph = build_ct_graph(lsequence, constraints)

    print(f"badge track: {badge.duration} s of readings, cleaned to {graph}")
    print("ground-truth route:",
          " -> ".join(loc for loc, _ in badge.truth.stay_sequence()))
    print()

    # --- incident questions ---------------------------------------------
    questions = [
        ("was the badge ever in the server room?",
         f"? {SERVER_ROOM} ?"),
        ("did it stay >= 30 s in the server room?",
         f"? {SERVER_ROOM}[30] ?"),
        ("did it visit the archive and then the server room?",
         f"? {ARCHIVE} ? {SERVER_ROOM} ?"),
        ("did it pass reception before the server room?",
         f"? {RECEPTION} ? {SERVER_ROOM} ?"),
    ]
    print("incident questions (cleaned vs raw):")
    for text, pattern in questions:
        query = TrajectoryQuery(pattern)
        cleaned = query.probability(graph)
        raw = query.probability_prior(lsequence)
        actually = query.matches(truth)
        print(f"  {text:48s} truth={'yes' if actually else 'no':3s} "
              f"raw={raw:.3f} cleaned={cleaned:.3f}")

    # --- where was the badge during the incident window? ------------------
    window = (290, 300, 310)
    print("\nposition during the incident window:")
    for tau in window:
        answer = stay_query(graph, tau)
        top = sorted(answer.items(), key=lambda kv: -kv[1])[:3]
        line = ", ".join(f"{loc}={p:.2f}" for loc, p in top)
        print(f"  t={tau}: {line}   (truth: {truth[tau]})")

    # --- plausible full routes for the report ----------------------------
    print("\nthree plausible routes sampled from the cleaned graph:")
    sampler = TrajectorySampler(graph, np.random.default_rng(1))
    for i, sample in enumerate(sampler.sample_many(3), start=1):
        route = [sample[0]]
        for location in sample[1:]:
            if location != route[-1]:
                route.append(location)
        print(f"  #{i}: {' -> '.join(route[:12])}"
              f"{' ...' if len(route) > 12 else ''}")


if __name__ == "__main__":
    main()
